//! Seedable deterministic random number generation.
//!
//! The workload generators and loss-injection hooks need randomness that is
//! (a) fast, (b) reproducible from a single `u64` seed, and (c) independent
//! of platform or crate-version details. We use the xoshiro256** generator
//! seeded via SplitMix64 — the standard, well-analysed construction — rather
//! than an external crate so simulation results are stable forever.

/// A deterministic pseudo-random number generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use mind_sim::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. All-zero internal state is impossible
    /// by construction (SplitMix64 seeding).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        // Lemire's multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.gen_below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_below(items.len() as u64) as usize])
        }
    }

    /// Forks an independent generator; the child stream does not overlap with
    /// the parent's (it is reseeded through SplitMix64).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

/// A Zipfian distribution sampler over `[0, n)` with parameter `theta`,
/// matching the YCSB generator (`theta = 0.99` by default in YCSB).
///
/// Uses the Gray et al. rejection-free method, precomputing `zeta(n, theta)`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Creates a sampler over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta >= 1.0` (the harmonic form requires
    /// `theta < 1`).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; the domain sizes used by workloads (<= a few
        // million) make this affordable at construction time.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Samples a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let _ = self.zeta2;
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_below_in_bounds_and_covers() {
        let mut rng = SimRng::new(42);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            let v = rng.gen_range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = SimRng::new(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = SimRng::new(3);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [10u8, 20, 30];
        assert!(items.contains(rng.choose(&items).unwrap()));
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = SimRng::new(77);
        let mut child = parent.fork();
        let overlap = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn zipfian_is_skewed_and_bounded() {
        let mut rng = SimRng::new(2024);
        let z = Zipfian::new(1000, 0.99);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let r = z.sample(&mut rng) as usize;
            assert!(r < 1000);
            counts[r] += 1;
        }
        // Rank 0 should dominate the tail by a large margin.
        assert!(counts[0] > 20 * counts[500].max(1));
        // Head (top 10%) should carry the majority of mass.
        let head: u64 = counts[..100].iter().sum();
        assert!(head > 60_000, "head carried {head}");
    }

    #[test]
    fn zipfian_theta_zero_is_roughly_uniform() {
        let mut rng = SimRng::new(8);
        let z = Zipfian::new(10, 0.0);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.03, "bucket fraction {frac}");
        }
    }
}
