//! Deterministic discrete-event simulation engine.
//!
//! This crate is the lowest substrate of the MIND reproduction: a nanosecond
//! virtual clock ([`time::SimTime`]), a stable-ordered event queue
//! ([`event::EventQueue`]), a seedable deterministic random number generator
//! ([`rng::SimRng`]), and the statistics toolkit ([`stats`]) used by the
//! evaluation harness (histograms, counters, time series, and Jain's fairness
//! index from the paper's Figure 8).
//!
//! Everything in the workspace that "takes time" is expressed in terms of
//! [`time::SimTime`], so simulation runs are bit-for-bit reproducible from a
//! seed.

pub mod env;
pub mod event;
pub mod hash;
pub mod intern;
pub mod rng;
pub mod stats;
pub mod threads;
pub mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use threads::{ThreadBudget, ThreadReservation};
pub use time::SimTime;
