//! Stable-ordered discrete-event queue.
//!
//! The queue orders events by timestamp and breaks ties by insertion order,
//! which keeps simulation runs deterministic even when many events share a
//! timestamp (common for multicast invalidations, which fan out to all
//! sharers "at the same time" in the switch egress pipeline).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled for a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number for deterministic tie-breaking.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // lowest-sequence) event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use mind_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "second");
/// q.schedule(SimTime::from_nanos(10), "first");
/// assert_eq!(q.pop().unwrap().event, "first");
/// assert_eq!(q.pop().unwrap().event, "second");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is in the past — the simulation must
    /// never travel backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let next = self.heap.pop()?;
        self.now = next.at;
        Some(next)
    }

    /// Returns the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Drains and returns every event scheduled at exactly the next
    /// timestamp, in insertion order. Useful for batch-processing multicast
    /// fan-out deterministically.
    pub fn pop_batch(&mut self) -> Vec<Scheduled<E>> {
        let mut batch = Vec::new();
        self.pop_batch_into(&mut batch);
        batch
    }

    /// [`pop_batch`](Self::pop_batch) without the per-call allocation:
    /// clears `batch` and drains every event scheduled at exactly the next
    /// timestamp into it, in insertion order. Hot loops (the shard driver,
    /// the cluster issue engine) keep one scratch buffer alive across
    /// horizons instead of allocating a fresh `Vec` each time.
    pub fn pop_batch_into(&mut self, batch: &mut Vec<Scheduled<E>>) {
        batch.clear();
        let Some(at) = self.peek_time() else {
            return;
        };
        while self.peek_time() == Some(at) {
            batch.push(self.heap.pop().expect("peeked event exists"));
        }
        self.now = at;
    }
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3u32);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(42));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 0u32);
        q.pop();
        q.schedule_after(SimTime::from_nanos(5), 1);
        let ev = q.pop().unwrap();
        assert_eq!(ev.at, SimTime::from_nanos(15));
    }

    #[test]
    fn pop_batch_takes_all_simultaneous() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), 1u32);
        q.schedule(SimTime::from_nanos(7), 2);
        q.schedule(SimTime::from_nanos(9), 3);
        let batch = q.pop_batch();
        assert_eq!(
            batch.iter().map(|s| s.event).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(q.now(), SimTime::from_nanos(7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_batch_into_reuses_the_scratch_buffer() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), 1u32);
        q.schedule(SimTime::from_nanos(7), 2);
        q.schedule(SimTime::from_nanos(9), 3);
        let mut scratch = vec![Scheduled {
            at: SimTime::ZERO,
            seq: 0,
            event: 99u32,
        }];
        q.pop_batch_into(&mut scratch);
        assert_eq!(
            scratch.iter().map(|s| s.event).collect::<Vec<_>>(),
            vec![1, 2],
            "stale contents cleared, batch drained in insertion order"
        );
        q.pop_batch_into(&mut scratch);
        assert_eq!(scratch.iter().map(|s| s.event).collect::<Vec<_>>(), vec![3]);
        q.pop_batch_into(&mut scratch);
        assert!(scratch.is_empty(), "empty queue leaves an empty batch");
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.pop_batch().is_empty());
    }
}
