//! Deterministic fast hashing for the simulator's hot maps.
//!
//! The access hot path is dominated by map lookups keyed by page
//! addresses and region bases (blade page tables, directory slot store,
//! TCAM levels, memory-blade page stores). `std`'s default SipHash with a
//! per-process random seed is overkill there: the keys are internal
//! addresses, not attacker-controlled input, and the random seed makes
//! map iteration order vary across runs — the opposite of what a
//! deterministic simulator wants. [`FastMap`] swaps in a fixed-seed
//! multiply-xor hasher (splitmix-style finalizer): ~2 multiplies per
//! 8-byte word, identical across runs and platforms.
//!
//! Not DoS-resistant by design — never key a `FastMap` by untrusted
//! external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio seed; any odd constant works, this one spreads small keys.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
/// Multipliers from the splitmix64 finalizer (good 64-bit avalanche).
const MIX_A: u64 = 0xFF51_AFD7_ED55_8CCD;
const MIX_B: u64 = 0xC4CE_B9FE_1A85_EC53;

/// A fixed-seed multiply-xor hasher (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

impl Default for FastHasher {
    fn default() -> Self {
        FastHasher { state: SEED }
    }
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        let mut x = (self.state ^ word).wrapping_mul(MIX_A);
        x ^= x >> 33;
        self.state = x.wrapping_mul(MIX_B);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state ^ (self.state >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// The fixed-seed build-hasher.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` with the deterministic fast hasher (`FastMap::default()` to
/// construct — `new()` is tied to `RandomState`).
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `HashSet` with the deterministic fast hasher.
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(k: u64) -> u64 {
        FastBuildHasher::default().hash_one(k)
    }

    #[test]
    fn hashing_is_deterministic_across_hashers() {
        assert_eq!(hash_of(0x1000), hash_of(0x1000));
        assert_ne!(hash_of(0x1000), hash_of(0x2000));
    }

    #[test]
    fn page_aligned_keys_spread() {
        // Page addresses differ only in high bits; the low bits of their
        // hashes (which pick the bucket) must still spread.
        let mut low_bits = FastSet::default();
        for page in 0..1024u64 {
            low_bits.insert(hash_of(page << 12) & 0xFF);
        }
        assert!(low_bits.len() > 200, "only {} distinct buckets", low_bits.len());
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i << 12, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i << 12)), Some(&(i as u32)));
        }
        assert_eq!(m.remove(&0), Some(0));
        assert_eq!(m.get(&0), None);
    }

    #[test]
    fn tuple_keys_hash_both_fields() {
        let b = FastBuildHasher::default();
        assert_ne!(b.hash_one((1u64, 2u64)), b.hash_one((2u64, 1u64)));
    }
}
