//! Typed access to the workspace's environment knobs.
//!
//! Every `MIND_*` environment variable the workspace honours is parsed
//! here, in one place, with one policy per knob — instead of ad-hoc
//! `std::env::var` calls scattered across the harness engine, the shard
//! executor, and the thread budget. Each accessor comes in two layers: a
//! pure `parse_*` function over an `Option<&str>` (unit-tested without
//! touching process state) and a thin reader that applies it to the
//! process environment.
//!
//! Knobs that configure process-wide singletons ([`trace_level`],
//! [`profile_enabled`]) are read once and cached: the observability layer
//! consults them on hot paths, and a mid-process flip could never apply
//! retroactively anyway. Worker-count knobs are re-read on each call,
//! matching their historical semantics (each `Engine::from_env` or
//! `run_sharded` invocation sees the current environment).

use std::sync::OnceLock;

/// Harness engine worker count (`mind_harness::Engine::from_env`).
pub const THREADS_ENV: &str = "MIND_THREADS";
/// Shard-executor OS-thread override (`mind_workloads::shard`).
pub const SHARD_THREADS_ENV: &str = "MIND_SHARD_THREADS";
/// Process-wide thread-budget total ([`crate::threads::budget`]).
pub const BUDGET_ENV: &str = "MIND_THREAD_BUDGET";
/// Trace level for the observability layer (`mind_obs`).
pub const TRACE_ENV: &str = "MIND_TRACE";
/// Wall-clock self-profiling switch (`mind_obs::profile`).
pub const PROFILE_ENV: &str = "MIND_PROFILE";
/// Output directory for `BENCH_*.json` / `TRACE_*.json` reports.
pub const BENCH_DIR_ENV: &str = "MIND_BENCH_DIR";

/// How much the deterministic trace layer records.
///
/// The distinction that matters: everything recorded at [`On`] is
/// *grouping-invariant* — the same events with the same virtual
/// timestamps regardless of `MIND_THREADS`, `MIND_SHARD_THREADS`, or the
/// shard count — so rendered traces are byte-identical across every
/// execution cell. [`Full`] adds execution-shape marks (shard epoch /
/// horizon steps) that are inherently shard-count-dependent and therefore
/// outside the byte-identity contract.
///
/// [`On`]: TraceLevel::On
/// [`Full`]: TraceLevel::Full
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No events recorded; the instrumented paths reduce to a branch.
    #[default]
    Off,
    /// The grouping-invariant event set (datapath, window, service).
    On,
    /// Everything, plus shard-execution marks that depend on the shard
    /// count. Not covered by the cross-cell byte-identity contract.
    Full,
}

impl TraceLevel {
    /// Whether any tracing is active.
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }
}

/// Parses a positive integer knob; `None` when absent, unparseable, or
/// zero.
fn parse_positive(var: Option<&str>) -> Option<usize> {
    var.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// The machine's available parallelism (1 when undeterminable).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Parse policy for [`THREADS_ENV`]: the positive integer, else the
/// machine's available parallelism.
pub fn parse_threads(var: Option<&str>) -> usize {
    parse_positive(var).unwrap_or_else(available_parallelism)
}

/// Harness worker count from the environment.
pub fn threads() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref())
}

/// Parse policy for [`SHARD_THREADS_ENV`]: an explicit positive override,
/// else `None` (the shard executor then negotiates politely with the
/// thread budget).
pub fn parse_shard_threads(var: Option<&str>) -> Option<usize> {
    parse_positive(var)
}

/// Shard-executor OS-thread override from the environment.
pub fn shard_threads() -> Option<usize> {
    parse_shard_threads(std::env::var(SHARD_THREADS_ENV).ok().as_deref())
}

/// Parse policy for [`BUDGET_ENV`]: the positive integer, else the
/// machine's available parallelism.
pub fn parse_thread_budget(var: Option<&str>) -> usize {
    parse_positive(var).unwrap_or_else(available_parallelism)
}

/// Thread-budget total from the environment.
pub fn thread_budget() -> usize {
    parse_thread_budget(std::env::var(BUDGET_ENV).ok().as_deref())
}

/// Parse policy for [`TRACE_ENV`]: `1`/`on`/`true` enable the
/// grouping-invariant set, `2`/`full` add shard-execution marks,
/// everything else (including absence) is off.
pub fn parse_trace_level(var: Option<&str>) -> TraceLevel {
    match var.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
        Some("1") | Some("on") | Some("true") => TraceLevel::On,
        Some("2") | Some("full") => TraceLevel::Full,
        _ => TraceLevel::Off,
    }
}

/// Trace level from the environment, read once per process and cached
/// (the hot-path gate must be a load, not a syscall).
pub fn trace_level() -> TraceLevel {
    static LEVEL: OnceLock<TraceLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| parse_trace_level(std::env::var(TRACE_ENV).ok().as_deref()))
}

/// Parse policy for [`PROFILE_ENV`]: any value but `0`/`off`/empty
/// enables wall-clock self-profiling.
pub fn parse_profile(var: Option<&str>) -> bool {
    match var.map(|s| s.trim().to_ascii_lowercase()) {
        None => false,
        Some(v) => !matches!(v.as_str(), "" | "0" | "off" | "false"),
    }
}

/// Whether wall-clock self-profiling is on, read once per process and
/// cached.
pub fn profile_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| parse_profile(std::env::var(PROFILE_ENV).ok().as_deref()))
}

/// Output directory for bench reports (`None` → current directory).
pub fn bench_dir() -> Option<std::path::PathBuf> {
    std::env::var_os(BENCH_DIR_ENV).map(std::path::PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_integers_parse_with_whitespace() {
        assert_eq!(parse_positive(Some("4")), Some(4));
        assert_eq!(parse_positive(Some(" 12 ")), Some(12));
        assert_eq!(parse_positive(Some("0")), None, "zero rejected");
        assert_eq!(parse_positive(Some("-3")), None);
        assert_eq!(parse_positive(Some("four")), None);
        assert_eq!(parse_positive(None), None);
    }

    #[test]
    fn threads_fall_back_to_machine_parallelism() {
        assert_eq!(parse_threads(Some("3")), 3);
        assert!(parse_threads(Some("not-a-number")) >= 1);
        assert!(parse_threads(Some("0")) >= 1);
        assert!(parse_threads(None) >= 1);
    }

    #[test]
    fn shard_threads_are_an_explicit_override_only() {
        assert_eq!(parse_shard_threads(Some("2")), Some(2));
        assert_eq!(parse_shard_threads(Some("0")), None);
        assert_eq!(parse_shard_threads(None), None, "no machine fallback");
    }

    #[test]
    fn budget_falls_back_to_machine_parallelism() {
        assert_eq!(parse_thread_budget(Some("7")), 7);
        assert!(parse_thread_budget(None) >= 1);
    }

    #[test]
    fn trace_level_parses_the_documented_values() {
        assert_eq!(parse_trace_level(None), TraceLevel::Off);
        assert_eq!(parse_trace_level(Some("0")), TraceLevel::Off);
        assert_eq!(parse_trace_level(Some("off")), TraceLevel::Off);
        assert_eq!(parse_trace_level(Some("1")), TraceLevel::On);
        assert_eq!(parse_trace_level(Some("on")), TraceLevel::On);
        assert_eq!(parse_trace_level(Some("TRUE")), TraceLevel::On);
        assert_eq!(parse_trace_level(Some("2")), TraceLevel::Full);
        assert_eq!(parse_trace_level(Some("full")), TraceLevel::Full);
        assert_eq!(parse_trace_level(Some("garbage")), TraceLevel::Off);
    }

    #[test]
    fn trace_level_ordering_matches_verbosity() {
        assert!(TraceLevel::Off < TraceLevel::On);
        assert!(TraceLevel::On < TraceLevel::Full);
        assert!(!TraceLevel::Off.enabled());
        assert!(TraceLevel::On.enabled());
        assert!(TraceLevel::Full.enabled());
    }

    #[test]
    fn profile_switch_parses_the_documented_values() {
        assert!(!parse_profile(None));
        assert!(!parse_profile(Some("0")));
        assert!(!parse_profile(Some("off")));
        assert!(!parse_profile(Some("")));
        assert!(parse_profile(Some("1")));
        assert!(parse_profile(Some("yes")));
    }
}
