//! Simulated time.
//!
//! All latencies in the MIND reproduction are expressed as [`SimTime`], an
//! unsigned nanosecond count since simulation start. The paper's calibration
//! points (§7.2) — sub-100 ns local DRAM access, ~9 µs one-sided RDMA page
//! fetch, ~18 µs modified-state transitions, 100 ms bounded-splitting epochs —
//! span eight orders of magnitude, which comfortably fits in a `u64`
//! (584 years of simulated time).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic operators treat it as a plain nanosecond count. Subtraction is
/// saturating, so latency computations never panic on slightly out-of-order
/// bookkeeping.
///
/// # Examples
///
/// ```
/// use mind_sim::SimTime;
///
/// let rdma = SimTime::from_micros(9);
/// let dram = SimTime::from_nanos(80);
/// assert!(rdma > dram * 100);
/// assert_eq!((rdma + dram).as_nanos(), 9_080);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero timestamp (simulation start) / zero-length duration.
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time in microseconds as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time in milliseconds as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time in seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction; returns [`SimTime::ZERO`] instead of wrapping.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Returns the larger of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// Returns the smaller of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// Scales a duration by a float factor, rounding to the nearest
    /// nanosecond. Useful for bandwidth-derived serialization delays.
    pub fn scale(self, factor: f64) -> SimTime {
        debug_assert!(factor >= 0.0, "negative time scale");
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;

    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_micros(9).as_nanos(), 9_000);
        assert_eq!(SimTime::from_millis(100).as_nanos(), 100_000_000);
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_nanos(80).as_nanos(), 80);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(30);
        assert_eq!((a + b).as_nanos(), 130);
        assert_eq!((a - b).as_nanos(), 70);
        assert_eq!((b - a).as_nanos(), 0, "subtraction saturates");
        assert_eq!((a * 3).as_nanos(), 300);
        assert_eq!((a / 4).as_nanos(), 25);
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_nanos(1)), None);
        assert_eq!(
            SimTime::ZERO.saturating_sub(SimTime::from_secs(1)),
            SimTime::ZERO
        );
    }

    #[test]
    fn scale_rounds() {
        let t = SimTime::from_nanos(10);
        assert_eq!(t.scale(1.5).as_nanos(), 15);
        assert_eq!(t.scale(0.04).as_nanos(), 0);
        assert_eq!(t.scale(0.05).as_nanos(), 1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(80)), "80ns");
        assert_eq!(format!("{}", SimTime::from_micros(9)), "9.000us");
        assert_eq!(format!("{}", SimTime::from_millis(100)), "100.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
