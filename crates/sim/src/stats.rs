//! Measurement toolkit used by the evaluation harness.
//!
//! Provides counters, latency histograms with percentile queries, epoch time
//! series (Figure 8 left tracks directory entries over time), and Jain's
//! fairness index (Figure 8 right measures memory-blade load balance).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A latency histogram with exact-ish percentiles.
///
/// Values are bucketed logarithmically (64 major × 16 minor buckets, ~6 %
/// relative error), so recording is O(1) and memory is constant regardless of
/// sample count.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const MINOR_BITS: u32 = 4;
const MINOR: usize = 1 << MINOR_BITS;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64 * MINOR],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < MINOR as u64 {
            return value as usize;
        }
        let major = 63 - value.leading_zeros();
        let minor = ((value >> (major - MINOR_BITS)) & (MINOR as u64 - 1)) as usize;
        ((major - MINOR_BITS + 1) as usize) * MINOR + minor
    }

    fn bucket_low(index: usize) -> u64 {
        if index < MINOR {
            return index as u64;
        }
        let major = (index / MINOR) as u32 + MINOR_BITS - 1;
        let minor = (index % MINOR) as u64;
        (1u64 << major) | (minor << (major - MINOR_BITS))
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`SimTime`] sample in nanoseconds.
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_nanos());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]` (lower bucket bound; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_low(i);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A `(time, value)` series sampled during a run, e.g. directory entries per
/// bounded-splitting epoch for Figure 8 (left).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point; times must be non-decreasing.
    pub fn push(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= at),
            "time series must be appended in order"
        );
        self.points.push((at, value));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Largest value seen (0 when empty).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Last value (None when empty).
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Mean of values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

/// Jain's fairness index: `(Σx)² / (n · Σx²)`.
///
/// Equals 1.0 for perfectly balanced loads and `1/n` when a single entity
/// receives all load. Used to evaluate memory-allocation balance across
/// memory blades (paper Figure 8 right).
///
/// Returns 1.0 for empty input (vacuously fair) and for all-zero loads.
pub fn jains_index(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    let sum_sq: f64 = loads.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (loads.len() as f64 * sum_sq)
}

/// A labelled collection of counters, used for per-run metric snapshots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    values: BTreeMap<&'static str, u64>,
}

impl Metrics {
    /// Creates an empty metric set.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to metric `name`.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.values.entry(name).or_insert(0) += n;
    }

    /// Increments metric `name`.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads metric `name` (0 when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another metric set into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// Returns `self - baseline` per metric (saturating at zero), for
    /// measuring a steady-state window after a warmup phase.
    pub fn diff(&self, baseline: &Metrics) -> Metrics {
        let mut out = Metrics::new();
        for (k, v) in self.iter() {
            out.add(k, v.saturating_sub(baseline.get(k)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn histogram_percentiles_approximate() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.10, "p50 = {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.10, "p99 = {p99}");
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000);
    }

    #[test]
    fn histogram_merge_round_trips_deep_tail() {
        // The p99.9 cut of a merged histogram equals the cut over the
        // combined samples — partial (per-worker) histograms can be merged
        // without losing the deep tail the SLO reports are written
        // against.
        let mut combined = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for v in 1..=30_000u64 {
            combined.record(v);
            parts[(v % 3) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(merged.quantile(q), combined.quantile(q), "q={q}");
        }
        assert_eq!(merged.count(), combined.count());
        let p999 = merged.quantile(0.999) as f64;
        assert!((p999 - 29_970.0).abs() / 29_970.0 < 0.10, "p999 = {p999}");
    }

    #[test]
    fn histogram_empty_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn bucket_low_is_inverse_lower_bound() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u32::MAX as u64] {
            let b = Histogram::bucket_of(v);
            let low = Histogram::bucket_low(b);
            assert!(low <= v, "low {low} > value {v}");
            // Relative error bounded by one minor bucket (~6%).
            assert!((v - low) as f64 <= (v as f64 / MINOR as f64) + 1.0);
        }
    }

    #[test]
    fn time_series_tracks_points() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(100), 10.0);
        ts.push(SimTime::from_millis(200), 30.0);
        ts.push(SimTime::from_millis(300), 20.0);
        assert_eq!(ts.points().len(), 3);
        assert_eq!(ts.max_value(), 30.0);
        assert_eq!(ts.last(), Some(20.0));
        assert!((ts.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn jains_index_extremes() {
        assert!((jains_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let skewed = jains_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jains_index_monotone_in_balance() {
        let balanced = jains_index(&[4.0, 4.0, 4.0, 4.0]);
        let slightly = jains_index(&[5.0, 4.0, 4.0, 3.0]);
        let heavily = jains_index(&[13.0, 1.0, 1.0, 1.0]);
        assert!(balanced > slightly && slightly > heavily);
    }

    #[test]
    fn metrics_accumulate_and_merge() {
        let mut m = Metrics::new();
        m.incr("invalidations");
        m.add("invalidations", 2);
        m.add("remote_accesses", 7);
        assert_eq!(m.get("invalidations"), 3);
        assert_eq!(m.get("missing"), 0);

        let mut other = Metrics::new();
        other.add("remote_accesses", 3);
        m.merge(&other);
        assert_eq!(m.get("remote_accesses"), 10);
        let names: Vec<_> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["invalidations", "remote_accesses"]);
    }

    #[test]
    fn metrics_merge_diff_round_trip() {
        // diff is merge's inverse: (a ∪ b) − b == a whenever every key of
        // b also appears in the merge (which merge guarantees), so a
        // windowed measurement (merge during, diff after) recovers exactly
        // the window's contribution.
        let mut a = Metrics::new();
        a.add("remote_accesses", 7);
        a.add("invalidations", 3);
        let mut b = Metrics::new();
        b.add("remote_accesses", 5);
        b.add("flushed_pages", 2);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.get("remote_accesses"), 12);
        assert_eq!(merged.get("flushed_pages"), 2);

        let recovered = merged.diff(&b);
        assert_eq!(recovered.get("remote_accesses"), a.get("remote_accesses"));
        assert_eq!(recovered.get("invalidations"), a.get("invalidations"));
        // Keys only in b diff away to zero (but stay present).
        assert_eq!(recovered.get("flushed_pages"), 0);

        // And merging the baseline back restores the merged totals.
        let mut round = recovered;
        round.merge(&b);
        assert_eq!(round, merged);
    }

    #[test]
    fn metrics_diff_saturates_at_zero() {
        let mut a = Metrics::new();
        a.add("x", 2);
        let mut b = Metrics::new();
        b.add("x", 5);
        assert_eq!(a.diff(&b).get("x"), 0, "never underflows");
    }
}
