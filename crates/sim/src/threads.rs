//! A process-wide thread budget for nested parallelism.
//!
//! Two layers of this workspace run on OS threads: the harness engine
//! fans scenarios across `MIND_THREADS` workers, and the sharded executor
//! ([`mind_workloads::shard`]) advances shard sub-clusters on threads of
//! its own. Neither layer knows about the other, so without coordination
//! an engine worker that starts a sharded replay would multiply the two
//! counts and oversubscribe the host. This module is that coordination: a
//! single process-wide [`ThreadBudget`] sized to the machine (or to
//! `MIND_THREAD_BUDGET`), from which every layer accounts for the *extra*
//! threads it spins up.
//!
//! Two disciplines, one ledger:
//!
//! - [`ThreadBudget::reserve`] asks for up to `want` extra threads and is
//!   granted only what the ledger has left — the polite default. A nested
//!   consumer inside a fully-subscribed engine is granted zero extras and
//!   degrades to its sequential path.
//! - [`ThreadBudget::claim`] takes exactly `n` extra slots even past the
//!   total — for explicit operator overrides (`MIND_THREADS=7`,
//!   `MIND_SHARD_THREADS=4`, an explicit API thread count). The ledger
//!   then shows no headroom, so *other* polite consumers stop spawning;
//!   the override itself is honoured verbatim.
//!
//! Thread counts never affect simulation results anywhere in this
//! workspace (parallel output is byte-identical to serial by
//! construction), so the budget is purely a performance valve: granting
//! fewer threads than asked can never change what a run computes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the process-wide budget total
/// (defaults to the machine's available parallelism).
pub const BUDGET_ENV: &str = crate::env::BUDGET_ENV;

/// The process-wide ledger of threads in use.
#[derive(Debug)]
pub struct ThreadBudget {
    /// Target concurrency: threads the process should keep busy at once.
    total: usize,
    /// Threads currently accounted for, including the calling thread's
    /// own slot (the ledger starts at 1, never 0).
    in_use: AtomicUsize,
}

impl ThreadBudget {
    /// A budget targeting `total` concurrent threads (min 1). The calling
    /// thread's slot is pre-accounted.
    pub fn new(total: usize) -> Self {
        ThreadBudget {
            total: total.max(1),
            in_use: AtomicUsize::new(1),
        }
    }

    /// Target concurrency of this budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Extra threads the ledger has left to grant (0 when oversubscribed).
    pub fn available(&self) -> usize {
        self.total.saturating_sub(self.in_use.load(Ordering::Acquire))
    }

    /// Reserves up to `want` extra threads, granting what is available.
    /// The grant is released when the returned [`ThreadReservation`] drops.
    pub fn reserve(&self, want: usize) -> ThreadReservation<'_> {
        let mut current = self.in_use.load(Ordering::Acquire);
        loop {
            let granted = self.total.saturating_sub(current).min(want);
            if granted == 0 {
                return ThreadReservation { budget: self, granted: 0 };
            }
            match self.in_use.compare_exchange_weak(
                current,
                current + granted,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return ThreadReservation { budget: self, granted },
                Err(actual) => current = actual,
            }
        }
    }

    /// Claims exactly `n` extra threads, even past the total — the
    /// explicit-override discipline. The ledger may go oversubscribed;
    /// polite [`ThreadBudget::reserve`] callers then get nothing until
    /// the returned [`ThreadReservation`] drops.
    pub fn claim(&self, n: usize) -> ThreadReservation<'_> {
        self.in_use.fetch_add(n, Ordering::AcqRel);
        ThreadReservation { budget: self, granted: n }
    }
}

/// A live grant from a [`ThreadBudget`]; gives the slots back on drop.
#[derive(Debug)]
pub struct ThreadReservation<'a> {
    budget: &'a ThreadBudget,
    granted: usize,
}

impl ThreadReservation<'_> {
    /// Extra threads this reservation holds (beyond the caller's own).
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// Total parallel lanes the holder may run: its own thread plus the
    /// granted extras.
    pub fn lanes(&self) -> usize {
        self.granted + 1
    }
}

impl Drop for ThreadReservation<'_> {
    fn drop(&mut self) {
        self.budget.in_use.fetch_sub(self.granted, Ordering::AcqRel);
    }
}

/// The process-wide budget: `MIND_THREAD_BUDGET` if set and parseable,
/// otherwise the machine's available parallelism.
pub fn budget() -> &'static ThreadBudget {
    static BUDGET: OnceLock<ThreadBudget> = OnceLock::new();
    BUDGET.get_or_init(|| ThreadBudget::new(crate::env::thread_budget()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_grants_only_whats_left() {
        let b = ThreadBudget::new(4);
        assert_eq!(b.available(), 3, "own slot pre-accounted");
        let r1 = b.reserve(2);
        assert_eq!(r1.granted(), 2);
        assert_eq!(r1.lanes(), 3);
        let r2 = b.reserve(5);
        assert_eq!(r2.granted(), 1, "only one slot left");
        let r3 = b.reserve(1);
        assert_eq!(r3.granted(), 0, "exhausted");
        assert_eq!(r3.lanes(), 1, "degrades to sequential");
        drop(r1);
        assert_eq!(b.available(), 2);
    }

    #[test]
    fn claim_oversubscribes_and_releases() {
        let b = ThreadBudget::new(2);
        let c = b.claim(6);
        assert_eq!(c.granted(), 6);
        assert_eq!(b.available(), 0, "oversubscribed");
        assert_eq!(b.reserve(1).granted(), 0, "polite callers starved");
        drop(c);
        assert_eq!(b.available(), 1);
    }

    #[test]
    fn zero_total_clamps_to_one() {
        let b = ThreadBudget::new(0);
        assert_eq!(b.total(), 1);
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn process_budget_is_a_singleton() {
        assert!(std::ptr::eq(budget(), budget()));
        assert!(budget().total() >= 1);
    }

    #[test]
    fn reservations_are_concurrency_safe() {
        let b = ThreadBudget::new(8);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..500 {
                        let r = b.reserve(2);
                        std::hint::black_box(r.granted());
                    }
                });
            }
        });
        assert_eq!(b.available(), 7, "all grants returned");
    }
}
