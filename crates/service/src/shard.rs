//! Shard-aware serving scenarios: a large static tenant population as a
//! partitioned replay.
//!
//! The full [`crate::MemoryService`] event loop is globally coupled —
//! admission reads rack-wide memory pressure and the elastic controller
//! rebalances across every blade — so it cannot be sharded without
//! changing its results. What *does* shard is the serving layer's steady
//! state: thousands of admitted single-threaded tenants, each in its own
//! protection domain, walking its own footprint. This module builds that
//! population as symmetric [`TenantGroup`] partitions (one group per
//! partition, one tenant per thread, patterns cycling per tenant exactly
//! like the service's QoS-diverse populations) for
//! `mind_workloads::shard::run_sharded` — the path the ROADMAP's
//! 10⁴–10⁶-tenant scenarios go through.
//!
//! Every tenant is single-threaded, so writes stay on one compute blade
//! and the population satisfies the sharding determinism contract (no
//! invalidations) by construction.

use mind_core::cluster::MindConfig;
use mind_sim::{SimRng, SimTime};
use mind_workloads::runner::RunConfig;
use mind_workloads::trace::{TraceOp, Workload};
use mind_workloads::ShardSpec;

use mind_sim::rng::Zipfian;

use crate::tenant::{sample_op, AccessPattern};

/// Parameters of one partitioned tenant population.
#[derive(Debug, Clone, Copy)]
pub struct TenantGroupConfig {
    /// Tenants per partition (each is one replay thread).
    pub tenants_per_group: u16,
    /// Footprint of each tenant, in 4 KB pages.
    pub pages_per_tenant: u64,
    /// Read fraction of every tenant's traffic.
    pub read_ratio: f64,
    /// Root seed; each (group, tenant) forks its own RNG from it.
    pub seed: u64,
}

/// The access-pattern mix a tenant population cycles through — the same
/// uniform/zipfian/scan diversity [`crate::ServiceConfig`] populations
/// carry, keyed by *global* tenant index so the mix is identical however
/// the groups are sharded.
fn pattern_of(global_tenant: u64) -> AccessPattern {
    match global_tenant % 3 {
        0 => AccessPattern::Zipfian(0.99),
        1 => AccessPattern::Uniform,
        _ => AccessPattern::Scan,
    }
}

/// One partition's worth of tenants as a single [`Workload`]: thread `t`
/// is tenant `t`, region `t` is its footprint.
///
/// Stored structure-of-arrays with everything derivable pooled: tenants
/// in a group share one footprint, one read ratio, and (since the
/// pattern mix uses a single skew) one Zipfian sampler — the sampler's
/// `sample(&self, rng)` is read-only, so sharing it changes no draw —
/// while each tenant keeps only what is truly its own: a 32-byte RNG and
/// a scan cursor. Per-tenant patterns are recomputed from the pure
/// global-index cycle rather than stored. That takes the per-tenant
/// footprint from ~128 bytes (a full `TenantWorkload` with its own
/// `Option<Zipfian>`) to 40 bytes, the difference between 10⁵- and
/// 10⁶-tenant populations fitting in RSS. Op streams are byte-identical
/// to the per-struct layout: both call the same
/// [`sample_op`] body with the same RNG fork order.
#[derive(Debug)]
pub struct TenantGroup {
    group: u16,
    pages: u64,
    read_ratio: f64,
    /// Global index of tenant 0, for the pattern cycle.
    first_global: u64,
    /// One pooled sampler for every Zipfian tenant in the group (the mix
    /// uses a single `(pages, theta)`); `None` when no tenant needs it.
    zipf: Option<Zipfian>,
    /// Per-tenant private RNG, forked from the group root in tenant
    /// order.
    rngs: Vec<SimRng>,
    /// Per-tenant scan cursor (only scan tenants advance theirs).
    cursors: Vec<u64>,
}

impl TenantGroup {
    /// Builds partition `group` of the population: RNGs fork from a
    /// per-group root, so a group's op stream depends only on `(cfg,
    /// group)` — not on which shard hosts it.
    pub fn new(cfg: &TenantGroupConfig, group: u16) -> Self {
        let mut root = SimRng::new(
            cfg.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(group as u64 + 1)),
        );
        let n = cfg.tenants_per_group;
        let first_global = group as u64 * n as u64;
        let zipf_theta = (0..n).find_map(|t| match pattern_of(first_global + t as u64) {
            AccessPattern::Zipfian(theta) => Some(theta),
            _ => None,
        });
        TenantGroup {
            group,
            pages: cfg.pages_per_tenant,
            read_ratio: cfg.read_ratio,
            first_global,
            zipf: zipf_theta.map(|theta| Zipfian::new(cfg.pages_per_tenant, theta)),
            rngs: (0..n).map(|_| root.fork()).collect(),
            cursors: vec![0; n as usize],
        }
    }

    /// The access pattern of local tenant `tenant` (derived from the
    /// global-index cycle, not stored).
    pub fn pattern(&self, tenant: u16) -> AccessPattern {
        pattern_of(self.first_global + tenant as u64)
    }
}

impl Workload for TenantGroup {
    fn name(&self) -> String {
        format!("tenant-group{}(n={})", self.group, self.rngs.len())
    }

    fn regions(&self) -> Vec<u64> {
        vec![self.pages << 12; self.rngs.len()]
    }

    fn n_threads(&self) -> u16 {
        self.rngs.len() as u16
    }

    fn next_op(&mut self, thread: u16) -> TraceOp {
        let t = thread as usize;
        let mut op = sample_op(
            self.pages,
            self.read_ratio,
            self.pattern(thread),
            self.zipf.as_ref(),
            &mut self.cursors[t],
            &mut self.rngs[t],
        );
        op.region = thread;
        op
    }
}

/// A [`mind_workloads::shard::PartitionFactory`] over this population:
/// pass `&tenant_partitions(cfg)` to `run_group` / `run_sharded`.
pub fn tenant_partitions(cfg: TenantGroupConfig) -> impl Fn(u16) -> Box<dyn Workload> + Sync {
    move |group| Box::new(TenantGroup::new(&cfg, group))
}

/// Sizes a rack and [`ShardSpec`] for `partitions × cfg.tenants_per_group`
/// tenants — the constructor behind the 10⁵-tenant scenario family.
///
/// Every capacity scales with the population so the determinism contract
/// holds at any size:
///
/// - one compute and one memory blade per partition, the blade sized to
///   2× the partition's aggregate footprint;
/// - directory capacity at 4× the initial region-entry population (16 KB
///   initial regions), keeping utilization at ¼ — half the contract's ½
///   ceiling;
/// - rule capacity at 4 rules per tenant (each tenant is its own
///   protection domain), rounded to a power of two so every shard count
///   that divides `partitions` also divides the capacities.
///
/// The returned spec replays 8-op turns in batches of 8 with no warmup
/// and a 50 µs conservative window; pair it with
/// [`tenant_partitions`]`(cfg)`.
pub fn population_spec(name: &str, partitions: u16, cfg: TenantGroupConfig) -> ShardSpec {
    let total = partitions as u64 * cfg.tenants_per_group as u64;
    let region_bytes = cfg.pages_per_tenant << 12;
    // Initial directory entries materialize at 16 KB granularity.
    let entries_per_tenant = (region_bytes >> 14).max(1);
    let dir_capacity = (entries_per_tenant * total * 4).next_power_of_two() as usize;
    let rule_capacity = (total * 4).next_power_of_two() as usize;
    let blade_bytes = (cfg.tenants_per_group as u64 * region_bytes * 2).next_power_of_two();
    ShardSpec {
        name: name.to_string(),
        base: MindConfig {
            n_compute: partitions,
            n_memory: partitions,
            cache_pages: 4096,
            blade_span: blade_bytes,
            memory_blade_bytes: blade_bytes,
            dir_capacity,
            rule_capacity,
            ..MindConfig::default()
        },
        partitions,
        run: RunConfig {
            ops_per_thread: 8,
            warmup_ops_per_thread: 0,
            threads_per_blade: cfg.tenants_per_group,
            ..Default::default()
        }
        .with_batch_ops(8),
        horizon: SimTime::from_micros(50),
        domain_per_thread: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TenantGroupConfig {
        TenantGroupConfig {
            tenants_per_group: 9,
            pages_per_tenant: 16,
            read_ratio: 0.7,
            seed: 42,
        }
    }

    #[test]
    fn group_exposes_one_thread_and_region_per_tenant() {
        let g = TenantGroup::new(&cfg(), 0);
        assert_eq!(g.n_threads(), 9);
        assert_eq!(g.regions(), vec![16 << 12; 9]);
    }

    #[test]
    fn ops_stay_in_the_issuing_tenants_region() {
        let mut g = TenantGroup::new(&cfg(), 3);
        for t in 0..9u16 {
            for _ in 0..200 {
                let op = g.next_op(t);
                assert_eq!(op.region, t, "tenant confined to its own region");
                assert!(op.offset < 16 << 12);
            }
        }
    }

    #[test]
    fn groups_are_deterministic_and_distinct() {
        let mut a = TenantGroup::new(&cfg(), 5);
        let mut b = TenantGroup::new(&cfg(), 5);
        let mut c = TenantGroup::new(&cfg(), 6);
        let mut same = true;
        for _ in 0..100 {
            assert_eq!(a.next_op(2), b.next_op(2), "same group, same stream");
            same &= a.next_op(1) == c.next_op(1);
        }
        assert!(!same, "different groups draw different streams");
    }

    #[test]
    fn population_spec_scales_capacities_with_the_population() {
        // The committed datapath/shards geometry: 16 × 1024 tenants of 16
        // pages each must come out exactly as the hand-sized original.
        let pop = TenantGroupConfig {
            tenants_per_group: 1024,
            pages_per_tenant: 16,
            read_ratio: 0.7,
            seed: 42,
        };
        let spec = population_spec("pop", 16, pop);
        assert_eq!(spec.base.n_compute, 16);
        assert_eq!(spec.base.dir_capacity, 262_144, "1/4 utilization");
        assert_eq!(spec.base.rule_capacity, 65_536);
        assert_eq!(spec.base.memory_blade_bytes, 1 << 27);
        assert_eq!(spec.run.threads_per_blade, 1024);
        assert!(spec.domain_per_thread);
        // Power-of-two capacities divide every power-of-two shard count.
        for shards in [1u16, 2, 4, 8, 16] {
            assert!(spec.base.try_partition(shards).is_ok(), "shards={shards}");
        }
    }

    #[test]
    fn population_spec_is_confined_at_small_scale() {
        let pop = TenantGroupConfig {
            tenants_per_group: 8,
            pages_per_tenant: 16,
            read_ratio: 0.7,
            seed: 7,
        };
        let spec = population_spec("pop-small", 4, pop);
        let factory = tenant_partitions(pop);
        let fused = mind_workloads::run_group(&spec, &factory).expect("confined population");
        assert_eq!(fused.invalidations, 0, "single-threaded tenants never share");
        let sharded = mind_workloads::run_sharded(&spec, 4, &factory).expect("confined population");
        assert_eq!(fused.total_ops, sharded.total_ops);
        assert_eq!(fused.runtime, sharded.runtime);
        assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
    }

    #[test]
    fn soa_group_matches_per_tenant_struct_layout() {
        // The compaction contract: the structure-of-arrays group must
        // draw the identical op stream the pre-SoA layout — one full
        // TenantWorkload per tenant — drew, fork-for-fork.
        use crate::tenant::TenantWorkload;
        let c = cfg();
        let mut g = TenantGroup::new(&c, 2);
        let mut root = SimRng::new(
            c.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(2 + 1)),
        );
        let mut reference: Vec<TenantWorkload> = (0..c.tenants_per_group)
            .map(|t| {
                let global = 2 * c.tenants_per_group as u64 + t as u64;
                TenantWorkload::with_pattern(
                    c.pages_per_tenant,
                    c.read_ratio,
                    pattern_of(global),
                    root.fork(),
                )
            })
            .collect();
        for _ in 0..50 {
            for t in 0..c.tenants_per_group {
                let mut want = reference[t as usize].next_op(0);
                want.region = t;
                assert_eq!(g.next_op(t), want, "tenant {t}");
            }
        }
    }

    #[test]
    fn pattern_mix_cycles_by_global_tenant_index() {
        // Group boundaries must not reset the cycle: tenant 9 (group 1,
        // local 0) continues where tenant 8 left off.
        assert_eq!(pattern_of(0), AccessPattern::Zipfian(0.99));
        assert_eq!(pattern_of(1), AccessPattern::Uniform);
        assert_eq!(pattern_of(2), AccessPattern::Scan);
        assert_eq!(pattern_of(9), AccessPattern::Zipfian(0.99));
        let g1 = TenantGroup::new(&cfg(), 1);
        assert_eq!(g1.pattern(0), pattern_of(9));
    }
}
