//! Shard-aware serving scenarios: a large static tenant population as a
//! partitioned replay.
//!
//! The full [`crate::MemoryService`] event loop is globally coupled —
//! admission reads rack-wide memory pressure and the elastic controller
//! rebalances across every blade — so it cannot be sharded without
//! changing its results. What *does* shard is the serving layer's steady
//! state: thousands of admitted single-threaded tenants, each in its own
//! protection domain, walking its own footprint. This module builds that
//! population as symmetric [`TenantGroup`] partitions (one group per
//! partition, one tenant per thread, patterns cycling per tenant exactly
//! like the service's QoS-diverse populations) for
//! `mind_workloads::shard::run_sharded` — the path the ROADMAP's
//! 10⁴–10⁶-tenant scenarios go through.
//!
//! Every tenant is single-threaded, so writes stay on one compute blade
//! and the population satisfies the sharding determinism contract (no
//! invalidations) by construction.

use mind_core::cluster::MindConfig;
use mind_sim::{SimRng, SimTime};
use mind_workloads::runner::RunConfig;
use mind_workloads::trace::{TraceOp, Workload};
use mind_workloads::ShardSpec;

use crate::tenant::{AccessPattern, TenantWorkload};

/// Parameters of one partitioned tenant population.
#[derive(Debug, Clone, Copy)]
pub struct TenantGroupConfig {
    /// Tenants per partition (each is one replay thread).
    pub tenants_per_group: u16,
    /// Footprint of each tenant, in 4 KB pages.
    pub pages_per_tenant: u64,
    /// Read fraction of every tenant's traffic.
    pub read_ratio: f64,
    /// Root seed; each (group, tenant) forks its own RNG from it.
    pub seed: u64,
}

/// The access-pattern mix a tenant population cycles through — the same
/// uniform/zipfian/scan diversity [`crate::ServiceConfig`] populations
/// carry, keyed by *global* tenant index so the mix is identical however
/// the groups are sharded.
fn pattern_of(global_tenant: u64) -> AccessPattern {
    match global_tenant % 3 {
        0 => AccessPattern::Zipfian(0.99),
        1 => AccessPattern::Uniform,
        _ => AccessPattern::Scan,
    }
}

/// One partition's worth of tenants as a single [`Workload`]: thread `t`
/// is tenant `t`, region `t` is its footprint.
#[derive(Debug)]
pub struct TenantGroup {
    group: u16,
    tenants: Vec<TenantWorkload>,
}

impl TenantGroup {
    /// Builds partition `group` of the population: RNGs fork from a
    /// per-group root, so a group's op stream depends only on `(cfg,
    /// group)` — not on which shard hosts it.
    pub fn new(cfg: &TenantGroupConfig, group: u16) -> Self {
        let mut root = SimRng::new(
            cfg.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(group as u64 + 1)),
        );
        let tenants = (0..cfg.tenants_per_group)
            .map(|t| {
                let global = group as u64 * cfg.tenants_per_group as u64 + t as u64;
                TenantWorkload::with_pattern(
                    cfg.pages_per_tenant,
                    cfg.read_ratio,
                    pattern_of(global),
                    root.fork(),
                )
            })
            .collect();
        TenantGroup {
            group,
            tenants,
        }
    }
}

impl Workload for TenantGroup {
    fn name(&self) -> String {
        format!("tenant-group{}(n={})", self.group, self.tenants.len())
    }

    fn regions(&self) -> Vec<u64> {
        self.tenants
            .iter()
            .flat_map(|t| t.regions())
            .collect()
    }

    fn n_threads(&self) -> u16 {
        self.tenants.len() as u16
    }

    fn next_op(&mut self, thread: u16) -> TraceOp {
        let mut op = self.tenants[thread as usize].next_op(0);
        op.region = thread;
        op
    }
}

/// A [`mind_workloads::shard::PartitionFactory`] over this population:
/// pass `&tenant_partitions(cfg)` to `run_group` / `run_sharded`.
pub fn tenant_partitions(cfg: TenantGroupConfig) -> impl Fn(u16) -> Box<dyn Workload> {
    move |group| Box::new(TenantGroup::new(&cfg, group))
}

/// Sizes a rack and [`ShardSpec`] for `partitions × cfg.tenants_per_group`
/// tenants — the constructor behind the 10⁵-tenant scenario family.
///
/// Every capacity scales with the population so the determinism contract
/// holds at any size:
///
/// - one compute and one memory blade per partition, the blade sized to
///   2× the partition's aggregate footprint;
/// - directory capacity at 4× the initial region-entry population (16 KB
///   initial regions), keeping utilization at ¼ — half the contract's ½
///   ceiling;
/// - rule capacity at 4 rules per tenant (each tenant is its own
///   protection domain), rounded to a power of two so every shard count
///   that divides `partitions` also divides the capacities.
///
/// The returned spec replays 8-op turns in batches of 8 with no warmup
/// and a 50 µs conservative window; pair it with
/// [`tenant_partitions`]`(cfg)`.
pub fn population_spec(name: &str, partitions: u16, cfg: TenantGroupConfig) -> ShardSpec {
    let total = partitions as u64 * cfg.tenants_per_group as u64;
    let region_bytes = cfg.pages_per_tenant << 12;
    // Initial directory entries materialize at 16 KB granularity.
    let entries_per_tenant = (region_bytes >> 14).max(1);
    let dir_capacity = (entries_per_tenant * total * 4).next_power_of_two() as usize;
    let rule_capacity = (total * 4).next_power_of_two() as usize;
    let blade_bytes = (cfg.tenants_per_group as u64 * region_bytes * 2).next_power_of_two();
    ShardSpec {
        name: name.to_string(),
        base: MindConfig {
            n_compute: partitions,
            n_memory: partitions,
            cache_pages: 4096,
            blade_span: blade_bytes,
            memory_blade_bytes: blade_bytes,
            dir_capacity,
            rule_capacity,
            ..MindConfig::default()
        },
        partitions,
        run: RunConfig {
            ops_per_thread: 8,
            warmup_ops_per_thread: 0,
            threads_per_blade: cfg.tenants_per_group,
            ..Default::default()
        }
        .with_batch_ops(8),
        horizon: SimTime::from_micros(50),
        domain_per_thread: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TenantGroupConfig {
        TenantGroupConfig {
            tenants_per_group: 9,
            pages_per_tenant: 16,
            read_ratio: 0.7,
            seed: 42,
        }
    }

    #[test]
    fn group_exposes_one_thread_and_region_per_tenant() {
        let g = TenantGroup::new(&cfg(), 0);
        assert_eq!(g.n_threads(), 9);
        assert_eq!(g.regions(), vec![16 << 12; 9]);
    }

    #[test]
    fn ops_stay_in_the_issuing_tenants_region() {
        let mut g = TenantGroup::new(&cfg(), 3);
        for t in 0..9u16 {
            for _ in 0..200 {
                let op = g.next_op(t);
                assert_eq!(op.region, t, "tenant confined to its own region");
                assert!(op.offset < 16 << 12);
            }
        }
    }

    #[test]
    fn groups_are_deterministic_and_distinct() {
        let mut a = TenantGroup::new(&cfg(), 5);
        let mut b = TenantGroup::new(&cfg(), 5);
        let mut c = TenantGroup::new(&cfg(), 6);
        let mut same = true;
        for _ in 0..100 {
            assert_eq!(a.next_op(2), b.next_op(2), "same group, same stream");
            same &= a.next_op(1) == c.next_op(1);
        }
        assert!(!same, "different groups draw different streams");
    }

    #[test]
    fn population_spec_scales_capacities_with_the_population() {
        // The committed datapath/shards geometry: 16 × 1024 tenants of 16
        // pages each must come out exactly as the hand-sized original.
        let pop = TenantGroupConfig {
            tenants_per_group: 1024,
            pages_per_tenant: 16,
            read_ratio: 0.7,
            seed: 42,
        };
        let spec = population_spec("pop", 16, pop);
        assert_eq!(spec.base.n_compute, 16);
        assert_eq!(spec.base.dir_capacity, 262_144, "1/4 utilization");
        assert_eq!(spec.base.rule_capacity, 65_536);
        assert_eq!(spec.base.memory_blade_bytes, 1 << 27);
        assert_eq!(spec.run.threads_per_blade, 1024);
        assert!(spec.domain_per_thread);
        // Power-of-two capacities divide every power-of-two shard count.
        for shards in [1u16, 2, 4, 8, 16] {
            assert!(spec.base.try_partition(shards).is_ok(), "shards={shards}");
        }
    }

    #[test]
    fn population_spec_is_confined_at_small_scale() {
        let pop = TenantGroupConfig {
            tenants_per_group: 8,
            pages_per_tenant: 16,
            read_ratio: 0.7,
            seed: 7,
        };
        let spec = population_spec("pop-small", 4, pop);
        let factory = tenant_partitions(pop);
        let fused = mind_workloads::run_group(&spec, &factory).expect("confined population");
        assert_eq!(fused.invalidations, 0, "single-threaded tenants never share");
        let sharded = mind_workloads::run_sharded(&spec, 4, &factory).expect("confined population");
        assert_eq!(fused.total_ops, sharded.total_ops);
        assert_eq!(fused.runtime, sharded.runtime);
        assert_eq!(fused.mops.to_bits(), sharded.mops.to_bits());
    }

    #[test]
    fn pattern_mix_cycles_by_global_tenant_index() {
        // Group boundaries must not reset the cycle: tenant 9 (group 1,
        // local 0) continues where tenant 8 left off.
        assert_eq!(pattern_of(0), AccessPattern::Zipfian(0.99));
        assert_eq!(pattern_of(1), AccessPattern::Uniform);
        assert_eq!(pattern_of(2), AccessPattern::Scan);
        assert_eq!(pattern_of(9), AccessPattern::Zipfian(0.99));
        let g1 = TenantGroup::new(&cfg(), 1);
        assert_eq!(g1.tenants[0].pattern(), pattern_of(9));
    }
}
