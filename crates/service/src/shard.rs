//! Shard-aware serving scenarios: a large static tenant population as a
//! partitioned replay.
//!
//! The full [`crate::MemoryService`] event loop is globally coupled —
//! admission reads rack-wide memory pressure and the elastic controller
//! rebalances across every blade — so it cannot be sharded without
//! changing its results. What *does* shard is the serving layer's steady
//! state: thousands of admitted single-threaded tenants, each in its own
//! protection domain, walking its own footprint. This module builds that
//! population as symmetric [`TenantGroup`] partitions (one group per
//! partition, one tenant per thread, patterns cycling per tenant exactly
//! like the service's QoS-diverse populations) for
//! `mind_workloads::shard::run_sharded` — the path the ROADMAP's
//! 10⁴–10⁶-tenant scenarios go through.
//!
//! Every tenant is single-threaded, so writes stay on one compute blade
//! and the population satisfies the sharding determinism contract (no
//! invalidations) by construction.

use mind_sim::SimRng;
use mind_workloads::trace::{TraceOp, Workload};

use crate::tenant::{AccessPattern, TenantWorkload};

/// Parameters of one partitioned tenant population.
#[derive(Debug, Clone, Copy)]
pub struct TenantGroupConfig {
    /// Tenants per partition (each is one replay thread).
    pub tenants_per_group: u16,
    /// Footprint of each tenant, in 4 KB pages.
    pub pages_per_tenant: u64,
    /// Read fraction of every tenant's traffic.
    pub read_ratio: f64,
    /// Root seed; each (group, tenant) forks its own RNG from it.
    pub seed: u64,
}

/// The access-pattern mix a tenant population cycles through — the same
/// uniform/zipfian/scan diversity [`crate::ServiceConfig`] populations
/// carry, keyed by *global* tenant index so the mix is identical however
/// the groups are sharded.
fn pattern_of(global_tenant: u64) -> AccessPattern {
    match global_tenant % 3 {
        0 => AccessPattern::Zipfian(0.99),
        1 => AccessPattern::Uniform,
        _ => AccessPattern::Scan,
    }
}

/// One partition's worth of tenants as a single [`Workload`]: thread `t`
/// is tenant `t`, region `t` is its footprint.
#[derive(Debug)]
pub struct TenantGroup {
    group: u16,
    tenants: Vec<TenantWorkload>,
}

impl TenantGroup {
    /// Builds partition `group` of the population: RNGs fork from a
    /// per-group root, so a group's op stream depends only on `(cfg,
    /// group)` — not on which shard hosts it.
    pub fn new(cfg: &TenantGroupConfig, group: u16) -> Self {
        let mut root = SimRng::new(
            cfg.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(group as u64 + 1)),
        );
        let tenants = (0..cfg.tenants_per_group)
            .map(|t| {
                let global = group as u64 * cfg.tenants_per_group as u64 + t as u64;
                TenantWorkload::with_pattern(
                    cfg.pages_per_tenant,
                    cfg.read_ratio,
                    pattern_of(global),
                    root.fork(),
                )
            })
            .collect();
        TenantGroup {
            group,
            tenants,
        }
    }
}

impl Workload for TenantGroup {
    fn name(&self) -> String {
        format!("tenant-group{}(n={})", self.group, self.tenants.len())
    }

    fn regions(&self) -> Vec<u64> {
        self.tenants
            .iter()
            .flat_map(|t| t.regions())
            .collect()
    }

    fn n_threads(&self) -> u16 {
        self.tenants.len() as u16
    }

    fn next_op(&mut self, thread: u16) -> TraceOp {
        let mut op = self.tenants[thread as usize].next_op(0);
        op.region = thread;
        op
    }
}

/// A [`mind_workloads::shard::PartitionFactory`] over this population:
/// pass `&tenant_partitions(cfg)` to `run_group` / `run_sharded`.
pub fn tenant_partitions(cfg: TenantGroupConfig) -> impl Fn(u16) -> Box<dyn Workload> {
    move |group| Box::new(TenantGroup::new(&cfg, group))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TenantGroupConfig {
        TenantGroupConfig {
            tenants_per_group: 9,
            pages_per_tenant: 16,
            read_ratio: 0.7,
            seed: 42,
        }
    }

    #[test]
    fn group_exposes_one_thread_and_region_per_tenant() {
        let g = TenantGroup::new(&cfg(), 0);
        assert_eq!(g.n_threads(), 9);
        assert_eq!(g.regions(), vec![16 << 12; 9]);
    }

    #[test]
    fn ops_stay_in_the_issuing_tenants_region() {
        let mut g = TenantGroup::new(&cfg(), 3);
        for t in 0..9u16 {
            for _ in 0..200 {
                let op = g.next_op(t);
                assert_eq!(op.region, t, "tenant confined to its own region");
                assert!(op.offset < 16 << 12);
            }
        }
    }

    #[test]
    fn groups_are_deterministic_and_distinct() {
        let mut a = TenantGroup::new(&cfg(), 5);
        let mut b = TenantGroup::new(&cfg(), 5);
        let mut c = TenantGroup::new(&cfg(), 6);
        let mut same = true;
        for _ in 0..100 {
            assert_eq!(a.next_op(2), b.next_op(2), "same group, same stream");
            same &= a.next_op(1) == c.next_op(1);
        }
        assert!(!same, "different groups draw different streams");
    }

    #[test]
    fn pattern_mix_cycles_by_global_tenant_index() {
        // Group boundaries must not reset the cycle: tenant 9 (group 1,
        // local 0) continues where tenant 8 left off.
        assert_eq!(pattern_of(0), AccessPattern::Zipfian(0.99));
        assert_eq!(pattern_of(1), AccessPattern::Uniform);
        assert_eq!(pattern_of(2), AccessPattern::Scan);
        assert_eq!(pattern_of(9), AccessPattern::Zipfian(0.99));
        let g1 = TenantGroup::new(&cfg(), 1);
        assert_eq!(g1.tenants[0].pattern(), pattern_of(9));
    }
}
