//! Admission control and the weighted round-robin slot planner.
//!
//! Two pure decision procedures, kept free of simulation state so they are
//! unit-testable and the service loop stays a thin driver:
//!
//! - [`admit`]: may a tenant of a given class join, given current memory
//!   pressure? Each QoS class has a utilization ceiling (see
//!   [`QosClass::admit_ceiling`]): BestEffort arrivals are refused first
//!   as the rack fills, Gold last.
//! - [`wrr_shares`]: how many of a dispatch quantum's slots does each
//!   class receive? Slots are split by class weight, capped by demand, and
//!   leftover capacity spills to the highest-priority class with unmet
//!   demand (work-conserving: no slot idles while any queue is non-empty).

use crate::qos::QosClass;

/// Why an arrival was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Projected memory utilization exceeds the class ceiling.
    MemoryPressure,
    /// The rack itself refused the allocation (out of memory or TCAM).
    RackFull,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::MemoryPressure => write!(f, "memory pressure"),
            AdmitError::RackFull => write!(f, "rack full"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Admission check: a tenant of `qos` asking for `footprint_frac` of the
/// rack's memory may join only if the projected utilization stays under
/// its class ceiling.
pub fn admit(utilization: f64, footprint_frac: f64, qos: QosClass) -> Result<(), AdmitError> {
    if utilization + footprint_frac <= qos.admit_ceiling() {
        Ok(())
    } else {
        Err(AdmitError::MemoryPressure)
    }
}

/// Splits `slots` dispatch slots across the three QoS classes given each
/// class's queued demand (requests waiting).
///
/// First pass allots `slots × weight / Σweights` per class (capped by its
/// demand); the remainder spills in priority order. The result never
/// exceeds demand and sums to `min(slots, Σdemand)`.
pub fn wrr_shares(slots: u32, demand: [u64; 3]) -> [u64; 3] {
    let total_w = QosClass::total_weight() as u64;
    let slots = slots as u64;
    let mut share = [0u64; 3];
    let mut left = slots;
    for class in QosClass::ALL {
        let i = class.index();
        let weighted = (slots * class.weight() as u64 / total_w).min(demand[i]).min(left);
        share[i] = weighted;
        left -= weighted;
    }
    for class in QosClass::ALL {
        let i = class.index();
        let extra = (demand[i] - share[i]).min(left);
        share[i] += extra;
        left -= extra;
    }
    share
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admit_respects_class_ceilings() {
        // 0.75 utilization: over BestEffort's 0.70 ceiling, under the rest.
        assert!(admit(0.72, 0.03, QosClass::Gold).is_ok());
        assert!(admit(0.72, 0.03, QosClass::Silver).is_ok());
        assert_eq!(
            admit(0.72, 0.03, QosClass::BestEffort),
            Err(AdmitError::MemoryPressure)
        );
        // Nobody gets past a full rack.
        assert!(admit(0.96, 0.01, QosClass::Gold).is_err());
    }

    #[test]
    fn wrr_shares_follow_weights_under_saturation() {
        // All classes have unbounded demand: 14 slots split 4:2:1 -> 8/4/2.
        let s = wrr_shares(14, [100, 100, 100]);
        assert_eq!(s, [8, 4, 2]);
    }

    #[test]
    fn wrr_shares_spill_to_priority_when_demand_is_short() {
        // Gold has nothing queued: its slots go to Silver first.
        let s = wrr_shares(14, [0, 100, 100]);
        assert_eq!(s[0], 0);
        assert_eq!(s[1] + s[2], 14);
        assert!(s[1] > s[2], "priority spill favors Silver");
    }

    #[test]
    fn wrr_shares_never_exceed_demand_or_slots() {
        let s = wrr_shares(10, [2, 1, 1]);
        assert_eq!(s, [2, 1, 1], "total demand below slots");
        let s = wrr_shares(3, [100, 100, 100]);
        assert_eq!(s.iter().sum::<u64>(), 3);
    }

    #[test]
    fn wrr_small_quantum_starves_best_effort_last() {
        // 4 slots, everyone hungry: weighted pass gives BE 4*1/7 = 0 and
        // the spill is claimed by Gold — BestEffort waits.
        let s = wrr_shares(4, [100, 100, 100]);
        assert_eq!(s[2], 0);
        assert_eq!(s[0] + s[1], 4);
    }
}
