//! Elastic compute-blade assignment.
//!
//! The property the paper's §2.2 argues disaggregation should deliver —
//! compute elasticity without giving up shared memory — becomes a policy
//! here: every elasticity epoch the service re-sizes each tenant's blade
//! footprint to its *measured* throughput, growing busy tenants onto more
//! compute blades (via the controller's round-robin [`place_thread`]
//! primitive) and shrinking idle ones back down to one.
//!
//! [`place_thread`]: mind_core::cluster::MindCluster::place_thread

use mind_sim::SimTime;

/// Blades a tenant should hold, given `ops` served in the last `epoch`
/// and a per-blade service capacity of `blade_capacity_hz` requests/s.
///
/// Always at least 1 (a live tenant keeps a foothold), at most `max`.
pub fn target_blades(ops: u64, epoch: SimTime, blade_capacity_hz: f64, max: u16) -> u16 {
    let secs = epoch.as_secs_f64();
    if secs <= 0.0 || blade_capacity_hz <= 0.0 {
        return 1;
    }
    let rate = ops as f64 / secs;
    ((rate / blade_capacity_hz).ceil() as u16).clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_tenant_keeps_one_blade() {
        assert_eq!(target_blades(0, SimTime::from_millis(5), 50_000.0, 8), 1);
    }

    #[test]
    fn target_scales_with_measured_rate() {
        let epoch = SimTime::from_millis(10);
        // 1000 ops in 10 ms = 100 k/s; at 50 k/s per blade -> 2 blades.
        assert_eq!(target_blades(1_000, epoch, 50_000.0, 8), 2);
        // 4x the load -> 8 blades.
        assert_eq!(target_blades(4_000, epoch, 50_000.0, 8), 8);
    }

    #[test]
    fn target_clamps_to_rack_size() {
        assert_eq!(
            target_blades(1_000_000, SimTime::from_millis(1), 1_000.0, 4),
            4
        );
    }

    #[test]
    fn degenerate_inputs_fall_back_to_one() {
        assert_eq!(target_blades(100, SimTime::ZERO, 50_000.0, 8), 1);
        assert_eq!(target_blades(100, SimTime::from_millis(1), 0.0, 8), 1);
    }
}
