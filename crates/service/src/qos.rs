//! Quality-of-service classes.
//!
//! Every tenant is admitted into one of three classes. The class decides
//! (1) the tenant's weight in the dispatcher's weighted round-robin —
//! Gold requests drain 4× faster than BestEffort under contention — and
//! (2) how much memory pressure the admission controller tolerates before
//! turning the tenant away: Gold tenants may push the rack to 95 %
//! utilization, BestEffort arrivals are refused beyond 70 % so paying
//! classes keep headroom.

/// A tenant's service class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QosClass {
    /// Highest priority; largest dispatch weight and admission headroom.
    Gold,
    /// Mid-tier.
    Silver,
    /// Scavenger class: admitted only into slack capacity, served last.
    BestEffort,
}

impl QosClass {
    /// All classes, in dispatch-priority order (highest first).
    pub const ALL: [QosClass; 3] = [QosClass::Gold, QosClass::Silver, QosClass::BestEffort];

    /// Weight in the weighted round-robin dispatcher.
    pub fn weight(self) -> u32 {
        match self {
            QosClass::Gold => 4,
            QosClass::Silver => 2,
            QosClass::BestEffort => 1,
        }
    }

    /// Memory-utilization ceiling for admitting a tenant of this class.
    pub fn admit_ceiling(self) -> f64 {
        match self {
            QosClass::Gold => 0.95,
            QosClass::Silver => 0.85,
            QosClass::BestEffort => 0.70,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            QosClass::Gold => "Gold",
            QosClass::Silver => "Silver",
            QosClass::BestEffort => "BestEffort",
        }
    }

    /// Index into [`QosClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            QosClass::Gold => 0,
            QosClass::Silver => 1,
            QosClass::BestEffort => 2,
        }
    }

    /// Sum of all class weights.
    pub fn total_weight() -> u32 {
        QosClass::ALL.iter().map(|c| c.weight()).sum()
    }

    /// Picks a class from a unit sample against a `[gold, silver]` prefix
    /// of a probability mix (the remainder is BestEffort).
    pub fn from_mix(u: f64, mix: [f64; 2]) -> QosClass {
        if u < mix[0] {
            QosClass::Gold
        } else if u < mix[0] + mix[1] {
            QosClass::Silver
        } else {
            QosClass::BestEffort
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_strictly_ordered() {
        assert!(QosClass::Gold.weight() > QosClass::Silver.weight());
        assert!(QosClass::Silver.weight() > QosClass::BestEffort.weight());
        assert_eq!(QosClass::total_weight(), 7);
    }

    #[test]
    fn ceilings_are_strictly_ordered() {
        assert!(QosClass::Gold.admit_ceiling() > QosClass::Silver.admit_ceiling());
        assert!(QosClass::Silver.admit_ceiling() > QosClass::BestEffort.admit_ceiling());
    }

    #[test]
    fn index_matches_all_order() {
        for (i, c) in QosClass::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn from_mix_partitions_the_unit_interval() {
        let mix = [0.2, 0.3];
        assert_eq!(QosClass::from_mix(0.1, mix), QosClass::Gold);
        assert_eq!(QosClass::from_mix(0.35, mix), QosClass::Silver);
        assert_eq!(QosClass::from_mix(0.9, mix), QosClass::BestEffort);
    }
}
