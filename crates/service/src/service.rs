//! The memory service: a deterministic discrete-event serving loop over a
//! MIND rack.
//!
//! Tenants arrive open-loop (Poisson), each getting its own protection
//! domain, vma, compute-blade foothold, and forked RNG; they offer
//! requests open-loop at their own Poisson rate into per-tenant queues; a
//! dispatcher with a fixed slot budget per quantum drains the queues under
//! weighted round-robin across QoS classes; an elasticity driver re-sizes
//! each tenant's blade set to its measured throughput every epoch; and
//! departures tear the tenant's domain down (TCAM entries, directory
//! state, memory) through the ordinary `exit` path.
//!
//! Determinism: a single event loop ordered by `(time, sequence)`, all
//! randomness drawn from one seeded root RNG in event order (tenants hold
//! private forks), no wall-clock anywhere — the same config always
//! produces the same [`ServiceReport`], which is what lets the harness
//! fan service scenarios across worker threads.

use std::collections::{BTreeMap, VecDeque};

use mind_core::addr::pow2_alloc_size;
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::engine::ClusterStep;
use mind_core::protect::PermClass;
use mind_core::system::{MemOp, MemorySystem, OpBatch};
use mind_obs::{EventKind, TraceData, WindowSeries};
use mind_sim::stats::{Histogram, Metrics};
use mind_sim::{EventQueue, SimRng, SimTime};
use mind_workloads::trace::Workload;

use crate::admission::{self, AdmitError};
use crate::elastic;
use crate::qos::QosClass;
use crate::tenant::{AccessPattern, PendingRequest, Tenant, TenantId, TenantSlo, TenantWorkload};

/// Configuration of a service run — pure `Copy` data, so a service
/// scenario can be rebuilt identically inside any harness worker.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// The rack underneath.
    pub rack: MindConfig,
    /// Root RNG seed; everything random forks from it deterministically.
    pub seed: u64,
    /// Simulated span of the run.
    pub duration: SimTime,
    /// Tenant arrival rate (Poisson, per simulated second).
    pub arrival_rate_hz: f64,
    /// Mean tenant lifetime (exponential).
    pub mean_lifetime: SimTime,
    /// `[P(Gold), P(Silver)]`; the remainder is BestEffort.
    pub qos_mix: [f64; 2],
    /// Tenant footprint bounds, in 4 KB pages (uniform).
    pub min_pages: u64,
    /// Upper footprint bound (inclusive).
    pub max_pages: u64,
    /// Fraction of tenant requests that are reads.
    pub read_ratio: f64,
    /// Per-tenant offered-load bounds, requests per second (uniform).
    pub min_rate_hz: f64,
    /// Upper offered-load bound.
    pub max_rate_hz: f64,
    /// Dispatcher period.
    pub dispatch_quantum: SimTime,
    /// Requests the dispatcher may serve per quantum.
    pub slots_per_quantum: u32,
    /// Per-tenant queue bound; arrivals beyond it are rejected.
    pub max_queue_depth: usize,
    /// Elasticity epoch (blade re-sizing period).
    pub elastic_epoch: SimTime,
    /// Assumed per-blade service capacity, requests per second.
    pub blade_capacity_hz: f64,
    /// Whether the dispatcher pushes each quantum's grants through the
    /// rack's batched datapath (one [`mind_core::OpBatch`] per quantum).
    /// `false` issues every grant through the scalar access path instead —
    /// same requests, same order, same timestamps, so reports are
    /// byte-identical either way (the equivalence suite asserts this);
    /// batching only amortizes the per-op table walks.
    pub batch_dispatch: bool,
    /// In-flight window depth of the quantum batch: how many grants the
    /// dispatcher keeps in flight at once. `1` (the default) reproduces
    /// the pre-window reports byte-identically — every grant issues at
    /// the quantum boundary. Deeper windows run the quantum through the
    /// issue/complete datapath: up to `window` independent faults overlap
    /// their fabric RTTs, grants beyond the window queue for a slot (the
    /// queueing shows up in per-tenant latency), and same-region grants
    /// serialize.
    pub window: u32,
    /// Whether overlapped quanta (`window > 1`) run through the rack's
    /// cluster-wide [`mind_core::engine::ClusterEngine`] — the same
    /// event-driven issue engine the sharded replay harness uses — instead
    /// of the per-batch [`mind_core::InFlightWindow`] walk. The engine
    /// arbitrates the quantum's grants through a shared slot pool,
    /// cluster-wide region serialization, and the per-NIC bandwidth gate
    /// ([`MindConfig::nic_depth`]). Off by default; takes effect only with
    /// `window > 1`. The engine path shares the replay paths' contract
    /// that grants are never rack-refused (a refused grant panics instead
    /// of counting as a rejected request), so leave it off for runs that
    /// inject blade failures.
    pub cluster_dispatch: bool,
    /// Access pattern per QoS class, in [`QosClass::ALL`] order — the
    /// tenant workload-diversity axis. Defaults to uniform everywhere;
    /// the QoS figure mixes Zipfian / uniform / scanning classes.
    pub class_patterns: [AccessPattern; 3],
}

impl Default for ServiceConfig {
    /// A 4-compute-blade functional rack under moderate overload: ~20
    /// concurrent tenants offering ~1.25× the dispatcher's capacity, so
    /// QoS classes visibly separate.
    fn default() -> Self {
        let mut rack = MindConfig::small();
        rack.n_compute = 4;
        rack.split.epoch_len = SimTime::from_millis(2);
        ServiceConfig {
            rack,
            seed: 2021,
            duration: SimTime::from_millis(200),
            arrival_rate_hz: 400.0,
            mean_lifetime: SimTime::from_millis(50),
            qos_mix: [0.2, 0.3],
            min_pages: 64,
            max_pages: 512,
            read_ratio: 0.7,
            min_rate_hz: 5_000.0,
            max_rate_hz: 20_000.0,
            dispatch_quantum: SimTime::from_micros(20),
            slots_per_quantum: 4,
            max_queue_depth: 64,
            elastic_epoch: SimTime::from_millis(5),
            blade_capacity_hz: 50_000.0,
            batch_dispatch: true,
            window: 1,
            cluster_dispatch: false,
            class_patterns: [AccessPattern::Uniform; 3],
        }
    }
}

impl ServiceConfig {
    /// Scales every load knob (arrival rate and per-tenant request rates)
    /// by `factor`, holding capacity fixed — the overload axis the QoS
    /// figure sweeps.
    pub fn load_scaled(mut self, factor: f64) -> Self {
        self.arrival_rate_hz *= factor;
        self.min_rate_hz *= factor;
        self.max_rate_hz *= factor;
        self
    }
}

/// Aggregate SLO numbers for one QoS class over a whole run.
#[derive(Debug, Clone, Copy)]
pub struct ClassReport {
    /// The class.
    pub qos: QosClass,
    /// Tenants admitted into the class.
    pub tenants_admitted: u64,
    /// Arrivals refused by admission control.
    pub tenants_rejected: u64,
    /// Requests served.
    pub ops: u64,
    /// Requests rejected (queue overflow or dropped at departure).
    pub rejected_requests: u64,
    /// Served throughput in MOPS over the run.
    pub mops: f64,
    /// Median end-to-end latency (ns).
    pub p50_ns: u64,
    /// Tail latency (ns).
    pub p99_ns: u64,
    /// Deep-tail latency (ns).
    pub p999_ns: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
}

/// Everything a service run produced.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Simulated span.
    pub duration: SimTime,
    /// Tenants admitted.
    pub tenants_admitted: u64,
    /// Arrivals refused by admission control or the rack.
    pub tenants_rejected: u64,
    /// Tenants that departed before the run ended.
    pub tenants_departed: u64,
    /// Tenants still live at the end.
    pub tenants_live: u64,
    /// Peak concurrent tenants.
    pub peak_live_tenants: u64,
    /// Requests served.
    pub total_ops: u64,
    /// Requests rejected.
    pub rejected_requests: u64,
    /// Final rack memory utilization.
    pub memory_utilization: f64,
    /// Final match-action rule count (translation + protection).
    pub match_action_rules: usize,
    /// Per-class aggregates, in [`QosClass::ALL`] order.
    pub classes: [ClassReport; 3],
    /// Per-tenant SLO records, in admission order.
    pub tenants: Vec<TenantSlo>,
    /// Rack metrics snapshot at completion.
    pub metrics: Metrics,
    /// Per-class windowed telemetry (end-to-end request latency bucketed
    /// by virtual completion time), in [`QosClass::ALL`] order; `None`
    /// when tracing is off, so untraced reports are unchanged.
    pub timeseries: Option<[WindowSeries; 3]>,
    /// The rack's deterministic event trace, service control-plane events
    /// included; `None` when tracing is off.
    pub trace: Option<TraceData>,
}

/// What the event loop processes. Events are ordered by the
/// [`EventQueue`]'s `(time, insertion-seq)` key, so the run is
/// deterministic even when events share a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The next tenant arrival.
    Arrival,
    /// A tenant's lifetime ended.
    Departure(TenantId),
    /// A tenant's next open-loop request.
    Request(TenantId),
    /// A dispatch quantum boundary.
    Dispatch,
    /// An elasticity epoch boundary.
    Rebalance,
}

/// The multi-tenant memory service.
#[derive(Debug)]
pub struct MemoryService {
    cfg: ServiceConfig,
    cluster: MindCluster,
    rng: SimRng,
    tenants: BTreeMap<TenantId, Tenant>,
    next_tenant_id: TenantId,
    queue: EventQueue<Event>,
    wrr_cursor: [usize; 3],
    class_latency: [Histogram; 3],
    class_ops: [u64; 3],
    class_rejected_requests: [u64; 3],
    class_admitted: [u64; 3],
    class_rejected_tenants: [u64; 3],
    slos: Vec<TenantSlo>,
    departed: u64,
    peak_live: usize,
    /// Reusable quantum batch (cleared each dispatch, keeps allocations).
    quantum: OpBatch,
    /// Reusable grant list paired with `quantum`.
    grants: Vec<(TenantId, usize, PendingRequest)>,
    /// Per-class windowed telemetry, present only when the rack traces.
    class_series: Option<[WindowSeries; 3]>,
}

impl MemoryService {
    /// Builds the service (rack included) from its configuration. Tracing
    /// and telemetry follow the rack's [`MindConfig::trace`] settings.
    pub fn new(cfg: ServiceConfig) -> Self {
        let class_series = if cfg.rack.trace.enabled() {
            Some(std::array::from_fn(|_| {
                WindowSeries::new(cfg.rack.trace.interval)
            }))
        } else {
            None
        };
        MemoryService {
            cluster: MindCluster::new(cfg.rack),
            class_series,
            rng: SimRng::new(cfg.seed),
            cfg,
            tenants: BTreeMap::new(),
            next_tenant_id: 1,
            queue: EventQueue::new(),
            wrr_cursor: [0; 3],
            class_latency: [Histogram::new(), Histogram::new(), Histogram::new()],
            class_ops: [0; 3],
            class_rejected_requests: [0; 3],
            class_admitted: [0; 3],
            class_rejected_tenants: [0; 3],
            slos: Vec::new(),
            departed: 0,
            peak_live: 0,
            quantum: OpBatch::fixed().with_window(cfg.window),
            grants: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The rack underneath (isolation tests inspect TCAM state through
    /// it).
    pub fn cluster(&self) -> &MindCluster {
        &self.cluster
    }

    /// Mutable rack access (isolation tests drive cross-tenant probes).
    pub fn cluster_mut(&mut self) -> &mut MindCluster {
        &mut self.cluster
    }

    /// The control lane service events trace on: one past the rack's last
    /// compute blade.
    fn control_lane(&self) -> u32 {
        self.cfg.rack.n_compute as u32
    }

    /// Live tenant ids, in admission order.
    pub fn live_tenants(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }

    /// A live tenant.
    pub fn tenant(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.get(&id)
    }

    // ----- Scripted control plane (tests and the event loop share it) -----

    /// Admits a tenant of `qos` with a `pages`-page footprint offering
    /// `rate_hz` requests/s: admission check against memory pressure, then
    /// `exec` (a fresh protection domain), `mmap`, and a compute-blade
    /// foothold via the controller's round-robin placement.
    pub fn admit(
        &mut self,
        now: SimTime,
        qos: QosClass,
        pages: u64,
        rate_hz: f64,
    ) -> Result<TenantId, AdmitError> {
        let capacity = self.cfg.rack.n_memory as u64 * self.cfg.rack.memory_blade_bytes;
        // Project the power-of-two extent the allocator will actually
        // reserve, not the raw ask — otherwise the class ceiling can be
        // silently overshot by up to 2x.
        let footprint_frac = pow2_alloc_size(pages << 12) as f64 / capacity as f64;
        if let Err(e) = admission::admit(self.cluster.memory_utilization(), footprint_frac, qos) {
            self.class_rejected_tenants[qos.index()] += 1;
            let lane = self.control_lane();
            self.cluster.trace().record(
                now,
                lane,
                EventKind::TenantReject,
                SimTime::ZERO,
                qos.index() as u64,
                0,
            );
            return Err(e);
        }
        let pid = self.cluster.exec().expect("exec cannot fail");
        let vma = match self.cluster.mmap_with(pid, pages << 12, PermClass::ReadWrite) {
            Ok(vma) => vma,
            Err(_) => {
                // Unwind the half-created tenant; its domain leaves nothing.
                self.cluster.exit(now, pid).expect("fresh pid exists");
                self.class_rejected_tenants[qos.index()] += 1;
                let lane = self.control_lane();
                self.cluster.trace().record(
                    now,
                    lane,
                    EventKind::TenantReject,
                    SimTime::ZERO,
                    qos.index() as u64,
                    0,
                );
                return Err(AdmitError::RackFull);
            }
        };
        let first_blade = self.cluster.place_thread(pid).expect("pid exists");
        let id = self.next_tenant_id;
        self.next_tenant_id += 1;
        let workload = TenantWorkload::with_pattern(
            pages,
            self.cfg.read_ratio,
            self.cfg.class_patterns[qos.index()],
            self.rng.fork(),
        );
        self.tenants.insert(
            id,
            Tenant {
                id,
                pid,
                qos,
                region_base: vma.base,
                pages,
                rate_hz,
                arrived_at: now,
                workload,
                queue: VecDeque::new(),
                blades: vec![first_blade],
                blades_peak: 1,
                next_blade: 0,
                latency: Histogram::new(),
                ops: 0,
                rejected: 0,
                ops_this_epoch: 0,
            },
        );
        self.class_admitted[qos.index()] += 1;
        self.peak_live = self.peak_live.max(self.tenants.len());
        let lane = self.control_lane();
        self.cluster.trace().record(
            now,
            lane,
            EventKind::TenantAdmit,
            SimTime::ZERO,
            qos.index() as u64,
            0,
        );
        Ok(id)
    }

    /// Departs a tenant: pending requests are dropped (counted rejected),
    /// the SLO record is cut, and the process exits — which revokes its
    /// protection grants, tears down directory state, and frees memory.
    pub fn depart(&mut self, now: SimTime, id: TenantId) -> Option<TenantSlo> {
        let mut t = self.tenants.remove(&id)?;
        let dropped = t.queue.len() as u64;
        t.rejected += dropped;
        self.class_rejected_requests[t.qos.index()] += dropped;
        t.queue.clear();
        self.cluster.exit(now, t.pid).expect("live tenant has a pid");
        debug_assert_eq!(
            self.cluster.protection_entries_for(t.pid),
            0,
            "departed tenant's TCAM entries reclaimed"
        );
        let slo = t.slo(now, true);
        self.slos.push(slo);
        self.departed += 1;
        let lane = self.control_lane();
        self.cluster.trace().record(
            now,
            lane,
            EventKind::TenantDepart,
            SimTime::ZERO,
            t.qos.index() as u64,
            0,
        );
        Some(slo)
    }

    /// Enqueues one open-loop request for tenant `id` (rejecting it if the
    /// queue is at its bound). Returns whether it was accepted.
    pub fn submit(&mut self, now: SimTime, id: TenantId) -> bool {
        let max_depth = self.cfg.max_queue_depth;
        let Some(t) = self.tenants.get_mut(&id) else {
            return false;
        };
        if t.queue.len() >= max_depth {
            t.rejected += 1;
            let qos = t.qos;
            self.class_rejected_requests[qos.index()] += 1;
            let lane = self.control_lane();
            self.cluster.trace().record(
                now,
                lane,
                EventKind::RequestReject,
                SimTime::ZERO,
                qos.index() as u64,
                0,
            );
            return false;
        }
        let op = t.workload.next_op(0);
        t.queue.push_back(PendingRequest {
            enqueued_at: now,
            op,
        });
        true
    }

    /// One dispatch quantum: serves up to `slots_per_quantum` queued
    /// requests, split across QoS classes by weighted round-robin (see
    /// [`admission::wrr_shares`]) and within a class round-robin across
    /// its tenants.
    ///
    /// The WRR pass hands out the quantum's *batch grant* — the selected
    /// `(tenant, request)` list — which then executes as one fixed-time
    /// [`OpBatch`] through the rack's batched datapath (or op-by-op
    /// through the scalar path when [`ServiceConfig::batch_dispatch`] is
    /// off; results are identical either way).
    pub fn dispatch(&mut self, now: SimTime) {
        let mut pending: [Vec<TenantId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut demand = [0u64; 3];
        for (id, t) in &self.tenants {
            if !t.queue.is_empty() {
                pending[t.qos.index()].push(*id);
                demand[t.qos.index()] += t.queue.len() as u64;
            }
        }
        let shares = admission::wrr_shares(self.cfg.slots_per_quantum, demand);

        // Selection pass: weighted round-robin hands out the quantum's
        // grants. Every request in the grant issues at `now`, so selection
        // and execution decompose without changing any outcome. The batch
        // and grant buffers are service-lifetime and reused per quantum.
        let mut grants = std::mem::take(&mut self.grants);
        let mut batch = std::mem::take(&mut self.quantum);
        grants.clear();
        batch.clear();
        for class in QosClass::ALL {
            let ci = class.index();
            let list = &pending[ci];
            if list.is_empty() || shares[ci] == 0 {
                continue;
            }
            let mut budget = shares[ci];
            let mut cursor = self.wrr_cursor[ci] % list.len();
            let mut empty_streak = 0;
            while budget > 0 && empty_streak < list.len() {
                let id = list[cursor];
                cursor = (cursor + 1) % list.len();
                let t = self.tenants.get_mut(&id).expect("listed tenant is live");
                let Some(req) = t.queue.pop_front() else {
                    empty_streak += 1;
                    continue;
                };
                empty_streak = 0;
                budget -= 1;
                batch.push(MemOp {
                    at: now,
                    blade: t.pick_blade(),
                    pdid: Some(t.pid),
                    vaddr: t.region_base + req.op.offset,
                    kind: req.op.kind,
                });
                grants.push((id, ci, req));
            }
            self.wrr_cursor[ci] = cursor;
        }

        // Execution pass: the whole quantum through the datapath at once.
        if self.cfg.cluster_dispatch && self.cfg.window > 1 && !batch.is_empty() {
            self.dispatch_through_engine(now, &mut batch);
        } else if self.cfg.batch_dispatch {
            self.cluster.run_batch(now, &mut batch);
        } else {
            for i in 0..batch.len() {
                let op = batch.op(i);
                let result = self.cluster.access_as(
                    now,
                    op.blade,
                    op.pdid.expect("grants carry their tenant"),
                    op.vaddr,
                    op.kind,
                );
                batch.record(i, now, result);
            }
        }

        // Accounting pass, in grant order. End-to-end latency is derived
        // from each grant's completion record (recorded issue time +
        // latency): at window 1 the issue time is the quantum boundary
        // `now` exactly; deeper windows delay grants that waited for an
        // in-flight slot, and that wait bills to the request.
        for (i, &(id, ci, ref req)) in grants.iter().enumerate() {
            let t = self.tenants.get_mut(&id).expect("granted tenant is live");
            match batch.result(i) {
                Ok(outcome) => {
                    let latency = batch.op(i).at.saturating_sub(req.enqueued_at)
                        + outcome.latency.total();
                    t.latency.record(latency.as_nanos());
                    t.ops += 1;
                    t.ops_this_epoch += 1;
                    self.class_latency[ci].record(latency.as_nanos());
                    self.class_ops[ci] += 1;
                    if let Some(series) = &mut self.class_series {
                        let stall = outcome.latency.inv_queue + outcome.latency.inv_tlb;
                        series[ci].record(
                            batch.op(i).at + outcome.latency.total(),
                            latency.as_nanos(),
                            outcome.remote,
                            outcome.invalidations,
                            stall.as_nanos(),
                        );
                    }
                }
                Err(_) => {
                    // A request the rack refused (e.g. a failed blade)
                    // still consumed its slot; it counts as rejected.
                    t.rejected += 1;
                    self.class_rejected_requests[ci] += 1;
                }
            }
        }
        if self.cluster.trace().enabled() {
            let queued: u64 = self.tenants.values().map(|t| t.queue.len() as u64).sum();
            let lane = self.control_lane();
            self.cluster.trace().record(
                now,
                lane,
                EventKind::Dispatch,
                SimTime::ZERO,
                grants.len() as u64,
                queued,
            );
        }
        self.grants = grants;
        self.quantum = batch;
    }

    /// Executes one quantum's grants through the rack's cluster-wide
    /// issue engine ([`ServiceConfig::cluster_dispatch`]): every grant is
    /// seeded as an engine source at the quantum boundary, then the
    /// engine's deterministic ready queue drives issue — gated grants
    /// (no free slot, region busy, NIC saturated) defer to their gate's
    /// release time and re-offer. Completions land back in the batch in
    /// op order, so the accounting pass downstream is path-agnostic.
    fn dispatch_through_engine(&mut self, now: SimTime, batch: &mut OpBatch) {
        let mut eng = self
            .cluster
            .cluster_engine(self.cfg.window, batch.len() as u32)
            .expect("MindCluster always offers the issue/complete engine");
        for src in 0..batch.len() as u32 {
            eng.seed(now, src);
        }
        // The engine issues in ready order, not op order; stage results
        // and record them in op order to honor the OpBatch contract.
        let mut done = vec![None; batch.len()];
        while let Some((at, src)) = eng.next_ready() {
            let i = src as usize;
            let op = batch.op(i);
            let ready0 = eng.ready0(src);
            let step = self
                .cluster
                .cluster_issue(&mut eng, at, ready0, &op)
                .expect("engine path probed above");
            match step {
                ClusterStep::Gated { until, .. } => eng.defer(until, src),
                ClusterStep::Issued {
                    outcome, region, ..
                } => done[i] = Some((at, outcome, region)),
            }
        }
        for (i, slot) in done.into_iter().enumerate() {
            let (at, outcome, region) = slot.expect("engine drains every seeded grant");
            batch.record_with_region(i, at, Ok(outcome), region);
        }
    }

    /// One elasticity epoch: re-sizes every tenant's blade set to its
    /// measured throughput, growing through the controller's round-robin
    /// placement and shrinking back toward a single blade.
    pub fn rebalance(&mut self) {
        let n_compute = self.cfg.rack.n_compute;
        let epoch = self.cfg.elastic_epoch;
        let capacity_hz = self.cfg.blade_capacity_hz;
        for t in self.tenants.values_mut() {
            let target = elastic::target_blades(t.ops_this_epoch, epoch, capacity_hz, n_compute);
            t.ops_this_epoch = 0;
            while (t.blades.len() as u16) < target {
                // place_thread round-robins over the whole rack, so within
                // n_compute attempts a blade not yet assigned appears.
                // Probes that land on an already-held blade are undone so
                // the controller's thread roster mirrors the real set.
                let mut grown = false;
                for _ in 0..n_compute {
                    let blade = self.cluster.place_thread(t.pid).expect("tenant is live");
                    if t.blades.contains(&blade) {
                        self.cluster
                            .unplace_thread(t.pid, blade)
                            .expect("tenant is live");
                    } else {
                        t.blades.push(blade);
                        grown = true;
                        break;
                    }
                }
                if !grown {
                    break; // Already on every blade.
                }
            }
            if (t.blades.len() as u16) > target {
                for &blade in &t.blades[target as usize..] {
                    self.cluster
                        .unplace_thread(t.pid, blade)
                        .expect("tenant is live");
                }
                t.blades.truncate(target as usize);
                t.next_blade = 0;
            }
            t.blades_peak = t.blades_peak.max(t.blades.len() as u16);
        }
    }

    // ----- The event loop -----

    /// Exponential inter-event gap with the given mean, floored at 1 ns so
    /// the loop always advances.
    fn exp_gap(&mut self, mean_ns: f64) -> SimTime {
        let u = self.rng.gen_f64();
        let ns = -(1.0 - u).ln() * mean_ns;
        SimTime::from_nanos((ns as u64).max(1))
    }

    fn exp_gap_rate(&mut self, rate_hz: f64) -> SimTime {
        self.exp_gap(1e9 / rate_hz.max(1e-9))
    }

    /// Runs the configured span and returns the report.
    pub fn run(mut self) -> ServiceReport {
        let duration = self.cfg.duration;
        let first_arrival = self.exp_gap_rate(self.cfg.arrival_rate_hz);
        self.queue.schedule(first_arrival, Event::Arrival);
        self.queue.schedule(self.cfg.dispatch_quantum, Event::Dispatch);
        self.queue.schedule(self.cfg.elastic_epoch, Event::Rebalance);

        while let Some(scheduled) = self.queue.pop() {
            let at = scheduled.at;
            if at > duration {
                break;
            }
            match scheduled.event {
                Event::Arrival => {
                    self.handle_arrival(at);
                    let gap = self.exp_gap_rate(self.cfg.arrival_rate_hz);
                    self.queue.schedule(at + gap, Event::Arrival);
                }
                Event::Departure(id) => {
                    self.depart(at, id);
                }
                Event::Request(id) => {
                    if self.tenants.contains_key(&id) {
                        self.submit(at, id);
                        let rate = self.tenants[&id].rate_hz;
                        let gap = self.exp_gap_rate(rate);
                        self.queue.schedule(at + gap, Event::Request(id));
                    }
                }
                Event::Dispatch => {
                    self.dispatch(at);
                    self.queue.schedule(at + self.cfg.dispatch_quantum, Event::Dispatch);
                }
                Event::Rebalance => {
                    self.rebalance();
                    self.queue.schedule(at + self.cfg.elastic_epoch, Event::Rebalance);
                }
            }
        }
        self.finish(duration)
    }

    /// An arrival: sample the tenant's class, footprint, load, and
    /// lifetime from the root RNG (in a fixed order), then try to admit.
    fn handle_arrival(&mut self, now: SimTime) {
        let qos = QosClass::from_mix(self.rng.gen_f64(), self.cfg.qos_mix);
        let pages = self.rng.gen_range(self.cfg.min_pages, self.cfg.max_pages + 1);
        let rate_hz = self.cfg.min_rate_hz
            + self.rng.gen_f64() * (self.cfg.max_rate_hz - self.cfg.min_rate_hz);
        let lifetime = self.exp_gap(self.cfg.mean_lifetime.as_nanos() as f64);
        if let Ok(id) = self.admit(now, qos, pages, rate_hz) {
            let first_request = self.exp_gap_rate(rate_hz);
            self.queue.schedule(now + first_request, Event::Request(id));
            self.queue.schedule(now + lifetime, Event::Departure(id));
        }
    }

    /// Cuts the final report: still-live tenants contribute SLO records
    /// (not marked departed) and the rack is snapshotted.
    fn finish(mut self, duration: SimTime) -> ServiceReport {
        let live: Vec<TenantId> = self.tenants.keys().copied().collect();
        let tenants_live = live.len() as u64;
        for id in live {
            let slo = self.tenants[&id].slo(duration, false);
            self.slos.push(slo);
        }
        // Ids are assigned monotonically, so this is admission order (the
        // records accumulate in departure order during the run).
        self.slos.sort_by_key(|s| s.tenant);
        let secs = duration.as_secs_f64().max(1e-12);
        let classes = QosClass::ALL.map(|qos| {
            let i = qos.index();
            let h = &self.class_latency[i];
            ClassReport {
                qos,
                tenants_admitted: self.class_admitted[i],
                tenants_rejected: self.class_rejected_tenants[i],
                ops: self.class_ops[i],
                rejected_requests: self.class_rejected_requests[i],
                mops: self.class_ops[i] as f64 / secs / 1e6,
                p50_ns: h.quantile(0.5),
                p99_ns: h.quantile(0.99),
                p999_ns: h.quantile(0.999),
                mean_ns: h.mean(),
            }
        });
        let trace = self.cluster.take_trace();
        ServiceReport {
            duration,
            tenants_admitted: self.class_admitted.iter().sum(),
            tenants_rejected: self.class_rejected_tenants.iter().sum(),
            tenants_departed: self.departed,
            tenants_live,
            peak_live_tenants: self.peak_live as u64,
            total_ops: self.class_ops.iter().sum(),
            rejected_requests: self.class_rejected_requests.iter().sum(),
            memory_utilization: self.cluster.memory_utilization(),
            match_action_rules: self.cluster.match_action_rules(),
            classes,
            tenants: self.slos,
            metrics: self.cluster.metrics_snapshot(),
            timeseries: self.class_series,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mind_core::system::AccessKind;

    fn quick_cfg() -> ServiceConfig {
        ServiceConfig {
            duration: SimTime::from_millis(40),
            arrival_rate_hz: 500.0,
            mean_lifetime: SimTime::from_millis(15),
            ..Default::default()
        }
    }

    /// The service-level equivalence guarantee: a full churn run with
    /// batched quantum dispatch matches the scalar per-op dispatch
    /// exactly — tenants, ops, rejects, latencies, and rack metrics.
    #[test]
    fn batched_dispatch_matches_scalar_dispatch() {
        let batched = MemoryService::new(quick_cfg()).run();
        let scalar = MemoryService::new(ServiceConfig {
            batch_dispatch: false,
            ..quick_cfg()
        })
        .run();
        assert_eq!(batched.tenants_admitted, scalar.tenants_admitted);
        assert_eq!(batched.total_ops, scalar.total_ops);
        assert_eq!(batched.rejected_requests, scalar.rejected_requests);
        assert_eq!(batched.metrics, scalar.metrics);
        assert_eq!(batched.tenants.len(), scalar.tenants.len());
        for (b, s) in batched.tenants.iter().zip(&scalar.tenants) {
            assert_eq!(b.ops, s.ops);
            assert_eq!(b.p50_ns, s.p50_ns);
            assert_eq!(b.p999_ns, s.p999_ns);
        }
        for (b, s) in batched.classes.iter().zip(&scalar.classes) {
            assert_eq!(b.ops, s.ops);
            assert_eq!(b.p99_ns, s.p99_ns);
        }
    }

    /// Overlapped quanta serve the same requests (the window changes
    /// dispatch timing, not what gets granted) and the run stays
    /// deterministic.
    #[test]
    fn windowed_dispatch_serves_same_requests_deterministically() {
        let windowed_cfg = ServiceConfig {
            window: 4,
            ..quick_cfg()
        };
        let a = MemoryService::new(windowed_cfg).run();
        let b = MemoryService::new(windowed_cfg).run();
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.metrics, b.metrics);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.p999_ns, y.p999_ns);
        }
        // Same grant schedule as the serialized window: WRR selection is
        // window-independent, so every quantum serves the same requests.
        let serialized = MemoryService::new(quick_cfg()).run();
        assert_eq!(a.tenants_admitted, serialized.tenants_admitted);
        assert_eq!(a.total_ops, serialized.total_ops);
        assert_eq!(a.rejected_requests, serialized.rejected_requests);
    }

    /// The per-NIC issue gate reaches dispatch with zero wiring: it rides
    /// in `rack.nic_depth` straight into the overlapped batch path. A
    /// bounded depth keeps the run deterministic, and — like the window —
    /// shifts dispatch timing without changing what gets granted.
    #[test]
    fn nic_bounded_dispatch_stays_deterministic() {
        let mut bounded_cfg = ServiceConfig {
            window: 4,
            ..quick_cfg()
        };
        bounded_cfg.rack.nic_depth = 1;
        let a = MemoryService::new(bounded_cfg).run();
        let b = MemoryService::new(bounded_cfg).run();
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.metrics, b.metrics);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.p999_ns, y.p999_ns);
        }
        let unbounded = MemoryService::new(ServiceConfig {
            window: 4,
            ..quick_cfg()
        })
        .run();
        assert_eq!(a.tenants_admitted, unbounded.tenants_admitted);
        assert_eq!(a.total_ops, unbounded.total_ops);
        assert_eq!(a.rejected_requests, unbounded.rejected_requests);
    }

    /// The cluster-engine dispatch path ([`ServiceConfig::cluster_dispatch`])
    /// serves the same grants as the per-batch window walk — WRR selection
    /// is execution-path-independent — and stays deterministic across
    /// reruns. The engine arbitration may time grants differently (shared
    /// slot pool vs per-batch window), which is the point: it shifts
    /// dispatch timing, never what gets granted.
    #[test]
    fn cluster_engine_dispatch_serves_same_grants_deterministically() {
        let engine_cfg = ServiceConfig {
            window: 4,
            cluster_dispatch: true,
            ..quick_cfg()
        };
        let a = MemoryService::new(engine_cfg).run();
        let b = MemoryService::new(engine_cfg).run();
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.metrics, b.metrics);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.p999_ns, y.p999_ns);
        }
        let windowed = MemoryService::new(ServiceConfig {
            window: 4,
            ..quick_cfg()
        })
        .run();
        assert_eq!(a.tenants_admitted, windowed.tenants_admitted);
        assert_eq!(a.total_ops, windowed.total_ops);
        assert_eq!(a.rejected_requests, windowed.rejected_requests);
        assert!(a.total_ops > 0, "the engine path actually served requests");
    }

    /// With `window: 1` the engine path is inert (the config documents it
    /// takes effect only with overlap), so reports stay byte-identical to
    /// the serialized quantum.
    #[test]
    fn cluster_dispatch_is_inert_at_window_one() {
        let a = MemoryService::new(ServiceConfig {
            cluster_dispatch: true,
            ..quick_cfg()
        })
        .run();
        let b = MemoryService::new(quick_cfg()).run();
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.metrics, b.metrics);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.ops, y.ops);
            assert_eq!(x.p999_ns, y.p999_ns);
        }
    }

    #[test]
    fn class_patterns_shape_tenant_traffic() {
        let cfg = ServiceConfig {
            class_patterns: [
                AccessPattern::Zipfian(0.99),
                AccessPattern::Uniform,
                AccessPattern::Scan,
            ],
            ..quick_cfg()
        };
        let mut svc = MemoryService::new(cfg);
        let gold = svc.admit(SimTime::ZERO, QosClass::Gold, 64, 1_000.0).unwrap();
        let be = svc
            .admit(SimTime::ZERO, QosClass::BestEffort, 64, 1_000.0)
            .unwrap();
        assert_eq!(
            svc.tenant(gold).unwrap().workload.pattern(),
            AccessPattern::Zipfian(0.99)
        );
        assert_eq!(svc.tenant(be).unwrap().workload.pattern(), AccessPattern::Scan);
        // A pattern-mixed full run still balances its books.
        let report = MemoryService::new(cfg).run();
        assert!(report.total_ops > 0);
        assert_eq!(
            report.tenants_admitted,
            report.tenants_departed + report.tenants_live
        );
    }

    #[test]
    fn service_run_is_deterministic() {
        let a = MemoryService::new(quick_cfg()).run();
        let b = MemoryService::new(quick_cfg()).run();
        assert_eq!(a.tenants_admitted, b.tenants_admitted);
        assert_eq!(a.total_ops, b.total_ops);
        assert_eq!(a.rejected_requests, b.rejected_requests);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.tenants.len(), b.tenants.len());
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.ops, y.ops);
            assert_eq!(x.p999_ns, y.p999_ns);
        }
    }

    #[test]
    fn churn_admits_and_departs_tenants() {
        let report = MemoryService::new(quick_cfg()).run();
        assert!(report.tenants_admitted > 5, "churn produced tenants");
        assert!(report.tenants_departed > 0, "lifetimes expired");
        assert_eq!(
            report.tenants_admitted,
            report.tenants_departed + report.tenants_live
        );
        assert!(report.total_ops > 0);
        assert_eq!(
            report.tenants.len() as u64,
            report.tenants_admitted,
            "every admitted tenant has an SLO record"
        );
    }

    #[test]
    fn qos_classes_separate_under_overload() {
        // 2x overload: Gold's demand fits inside its weighted share, so
        // its tail stays short while Silver backs up; BestEffort is
        // starved, bearing nearly all rejects. (Served-latency
        // percentiles of a *starved* class are survivor-biased, so the
        // BestEffort assertion is on its reject fraction, not its tail.)
        let cfg = quick_cfg().load_scaled(2.0);
        let report = MemoryService::new(cfg).run();
        let gold = report.classes[QosClass::Gold.index()];
        let silver = report.classes[QosClass::Silver.index()];
        let be = report.classes[QosClass::BestEffort.index()];
        assert!(gold.ops > 0 && silver.ops > 0 && be.ops > 0, "all served");
        assert!(
            gold.p99_ns < silver.p99_ns,
            "Gold p99 {} should undercut Silver p99 {}",
            gold.p99_ns,
            silver.p99_ns
        );
        let reject_frac = |c: ClassReport| c.rejected_requests as f64
            / (c.ops + c.rejected_requests).max(1) as f64;
        assert!(
            reject_frac(be) > 10.0 * reject_frac(gold),
            "BestEffort bears the rejects: {} vs {}",
            reject_frac(be),
            reject_frac(gold)
        );
    }

    #[test]
    fn departed_tenants_leave_no_tcam_entries() {
        let mut svc = MemoryService::new(quick_cfg());
        let id = svc
            .admit(SimTime::ZERO, QosClass::Gold, 128, 1_000.0)
            .unwrap();
        let pid = svc.tenant(id).unwrap().pid;
        assert!(svc.cluster().protection_entries_for(pid) > 0);
        svc.depart(SimTime::from_millis(1), id).unwrap();
        assert_eq!(svc.cluster().protection_entries_for(pid), 0);
        assert_eq!(svc.cluster().memory_utilization(), 0.0);
    }

    #[test]
    fn tenants_cannot_touch_each_others_domains() {
        let mut svc = MemoryService::new(quick_cfg());
        let a = svc
            .admit(SimTime::ZERO, QosClass::Gold, 64, 1_000.0)
            .unwrap();
        let b = svc
            .admit(SimTime::ZERO, QosClass::Silver, 64, 1_000.0)
            .unwrap();
        let (pid_a, base_a) = {
            let t = svc.tenant(a).unwrap();
            (t.pid, t.region_base)
        };
        let (pid_b, base_b) = {
            let t = svc.tenant(b).unwrap();
            (t.pid, t.region_base)
        };
        let now = SimTime::from_micros(10);
        assert!(svc
            .cluster_mut()
            .access_as(now, 0, pid_a, base_a, AccessKind::Write)
            .is_ok());
        assert!(svc
            .cluster_mut()
            .access_as(now, 0, pid_a, base_b, AccessKind::Read)
            .is_err());
        assert!(svc
            .cluster_mut()
            .access_as(now, 0, pid_b, base_a, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn admission_rejects_under_memory_pressure() {
        let mut cfg = quick_cfg();
        // Tiny rack: 2 memory blades x 4 MB = 2048 pages total, so
        // 128-page tenants hit the BestEffort ceiling within a few dozen
        // admissions.
        cfg.rack.memory_blade_bytes = 1 << 22;
        let mut svc = MemoryService::new(cfg);
        let mut admitted = 0;
        let mut rejected = 0;
        for _ in 0..40 {
            match svc.admit(SimTime::ZERO, QosClass::BestEffort, 128, 100.0) {
                Ok(_) => admitted += 1,
                Err(AdmitError::MemoryPressure) => rejected += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(admitted > 0, "some fit");
        assert!(rejected > 0, "pressure eventually refuses BestEffort");
    }

    #[test]
    fn elastic_growth_tracks_offered_load() {
        let mut cfg = quick_cfg();
        cfg.blade_capacity_hz = 1_000.0; // Tiny per-blade capacity.
        let mut svc = MemoryService::new(cfg);
        let id = svc
            .admit(SimTime::ZERO, QosClass::Gold, 64, 50_000.0)
            .unwrap();
        assert_eq!(svc.tenant(id).unwrap().blades.len(), 1);
        // Simulate a busy epoch: many served ops, then rebalance.
        for _ in 0..200 {
            svc.submit(SimTime::from_micros(1), id);
        }
        for i in 0..100 {
            svc.dispatch(SimTime::from_micros(2 + i));
        }
        svc.rebalance();
        let grown = svc.tenant(id).unwrap().blades.len();
        assert!(grown > 1, "busy tenant grew to {grown} blades");
        // The controller's thread roster mirrors the tenant's blade set
        // exactly (probe and shrink registrations are undone).
        let pid = svc.tenant(id).unwrap().pid;
        let roster = |svc: &MemoryService| {
            let mut r = svc.cluster().controller().process(pid).unwrap().blades.clone();
            r.sort_unstable();
            r
        };
        let mut held = svc.tenant(id).unwrap().blades.clone();
        held.sort_unstable();
        assert_eq!(roster(&svc), held);
        // An idle epoch shrinks it back.
        svc.rebalance();
        assert_eq!(svc.tenant(id).unwrap().blades.len(), 1);
        assert_eq!(roster(&svc).len(), 1, "shrink retired roster entries");
        assert!(svc.tenant(id).unwrap().blades_peak >= grown as u16);
    }

    #[test]
    fn queue_bound_rejects_excess_requests() {
        let mut cfg = quick_cfg();
        cfg.max_queue_depth = 4;
        let mut svc = MemoryService::new(cfg);
        let id = svc
            .admit(SimTime::ZERO, QosClass::Gold, 64, 1_000.0)
            .unwrap();
        let mut accepted = 0;
        for _ in 0..10 {
            if svc.submit(SimTime::from_micros(1), id) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(svc.tenant(id).unwrap().rejected, 6);
    }
}
