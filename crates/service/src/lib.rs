//! `mind_service` — a multi-tenant memory-serving front-end over the MIND
//! rack.
//!
//! The paper builds the mechanism (in-network translation, protection
//! domains, coherence); this crate builds the *operator* that a
//! disaggregated rack actually runs under: many tenants arriving and
//! departing (open-loop Poisson churn), each isolated in its own
//! protection domain, contending for a fixed dispatch capacity under
//! QoS-weighted round-robin, admitted or refused against memory pressure,
//! and elastically spread across compute blades as their offered load
//! moves. Every run is a pure function of its [`ServiceConfig`], so the
//! harness can fan service scenarios across worker threads with
//! byte-identical output.
//!
//! - [`qos`]: the Gold / Silver / BestEffort class lattice (dispatch
//!   weights, admission ceilings);
//! - [`tenant`]: per-tenant state — protection domain, vma, forked-RNG
//!   request generator (reusing [`mind_workloads::trace::Workload`]),
//!   queue, latency histogram, and the [`TenantSlo`] record;
//! - [`admission`]: the admission decision and the weighted round-robin
//!   slot planner, as pure functions;
//! - [`elastic`]: measured-throughput blade-count targeting;
//! - [`service`]: the deterministic event loop tying it together, and the
//!   [`ServiceReport`] (per-class and per-tenant p50/p99/p99.9,
//!   throughput, rejects) the figure suite serializes.

//!
//! [`shard`] additionally packages large static tenant populations as
//! symmetric partitions for the deterministic sharded replay in
//! `mind_workloads::shard`.

pub mod admission;
pub mod elastic;
pub mod qos;
pub mod service;
pub mod shard;
pub mod tenant;

pub use admission::AdmitError;
pub use qos::QosClass;
pub use service::{ClassReport, MemoryService, ServiceConfig, ServiceReport};
pub use shard::{population_spec, tenant_partitions, TenantGroup, TenantGroupConfig};
pub use tenant::{AccessPattern, Tenant, TenantId, TenantSlo, TenantWorkload};
