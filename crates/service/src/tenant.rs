//! Tenant state: identity, protection domain, footprint, request
//! generator, and per-tenant SLO accounting.
//!
//! Each admitted tenant owns one protection domain (its PID on the rack),
//! one contiguous vma, a private fork of the service's seeded RNG (so a
//! run is deterministic regardless of how tenants interleave), and a
//! latency histogram from which its SLO report (p50/p99/p99.9,
//! throughput, rejects) is cut when it departs.

use std::collections::VecDeque;

use mind_core::controller::Pid;
use mind_core::system::AccessKind;
use mind_sim::stats::Histogram;
use mind_sim::{SimRng, SimTime};
use mind_workloads::trace::{TraceOp, Workload};

use crate::qos::QosClass;

/// Service-level tenant identifier (distinct from the rack PID).
pub type TenantId = u64;

/// The tenant-scoped request generator: single-logical-thread uniform
/// random reads/writes over the tenant's own region — the [`Workload`]
/// trait reused at per-tenant granularity, so the service's traffic is
/// built from the same abstraction the replay harness uses.
#[derive(Debug)]
pub struct TenantWorkload {
    pages: u64,
    read_ratio: f64,
    rng: SimRng,
}

impl TenantWorkload {
    /// A generator over `pages` 4 KB pages with the given read fraction.
    pub fn new(pages: u64, read_ratio: f64, rng: SimRng) -> Self {
        TenantWorkload {
            pages,
            read_ratio,
            rng,
        }
    }
}

impl Workload for TenantWorkload {
    fn name(&self) -> String {
        format!("tenant(p={},r={})", self.pages, self.read_ratio)
    }

    fn regions(&self) -> Vec<u64> {
        vec![self.pages << 12]
    }

    fn n_threads(&self) -> u16 {
        1
    }

    fn next_op(&mut self, _thread: u16) -> TraceOp {
        let page = self.rng.gen_below(self.pages);
        let kind = if self.rng.gen_bool(self.read_ratio) {
            AccessKind::Read
        } else {
            AccessKind::Write
        };
        TraceOp {
            region: 0,
            offset: page << 12,
            kind,
        }
    }
}

/// A queued request: when it entered the tenant's queue and what it asks.
#[derive(Debug, Clone, Copy)]
pub struct PendingRequest {
    /// Open-loop arrival time.
    pub enqueued_at: SimTime,
    /// The memory operation.
    pub op: TraceOp,
}

/// A live tenant.
#[derive(Debug)]
pub struct Tenant {
    /// Service-level id.
    pub id: TenantId,
    /// Rack PID — also the tenant's protection domain (PDID).
    pub pid: Pid,
    /// Service class.
    pub qos: QosClass,
    /// Base of the tenant's vma on the rack.
    pub region_base: u64,
    /// Footprint in 4 KB pages.
    pub pages: u64,
    /// Offered load, requests per simulated second.
    pub rate_hz: f64,
    /// Arrival time.
    pub arrived_at: SimTime,
    /// Request generator (private RNG fork).
    pub workload: TenantWorkload,
    /// Open-loop queue awaiting dispatch.
    pub queue: VecDeque<PendingRequest>,
    /// Compute blades currently assigned (at least one).
    pub blades: Vec<u16>,
    /// Peak blade-count watermark.
    pub blades_peak: u16,
    /// Round-robin cursor over `blades`.
    pub next_blade: usize,
    /// End-to-end request latency (queueing + memory access), ns.
    pub latency: Histogram,
    /// Requests served.
    pub ops: u64,
    /// Requests rejected (queue overflow) or dropped at departure.
    pub rejected: u64,
    /// Requests served since the last elasticity epoch.
    pub ops_this_epoch: u64,
}

impl Tenant {
    /// The blade the next dispatched request runs on (round-robin over the
    /// tenant's assigned blades).
    pub fn pick_blade(&mut self) -> u16 {
        let blade = self.blades[self.next_blade % self.blades.len()];
        self.next_blade = (self.next_blade + 1) % self.blades.len();
        blade
    }

    /// Cuts the tenant's SLO record at time `now`.
    pub fn slo(&self, now: SimTime, departed: bool) -> TenantSlo {
        let span = now.saturating_sub(self.arrived_at).as_secs_f64().max(1e-12);
        TenantSlo {
            tenant: self.id,
            qos: self.qos,
            pages: self.pages,
            arrived_at: self.arrived_at,
            departed,
            ops: self.ops,
            rejected: self.rejected,
            mops: self.ops as f64 / span / 1e6,
            p50_ns: self.latency.quantile(0.5),
            p99_ns: self.latency.quantile(0.99),
            p999_ns: self.latency.quantile(0.999),
            mean_ns: self.latency.mean(),
            blades_peak: self.blades_peak,
        }
    }
}

/// Per-tenant SLO report: what the serving layer owes each customer.
#[derive(Debug, Clone, Copy)]
pub struct TenantSlo {
    /// Service-level id.
    pub tenant: TenantId,
    /// Service class.
    pub qos: QosClass,
    /// Footprint in pages.
    pub pages: u64,
    /// Arrival time.
    pub arrived_at: SimTime,
    /// Whether the tenant departed before the run ended.
    pub departed: bool,
    /// Requests served.
    pub ops: u64,
    /// Requests rejected or dropped.
    pub rejected: u64,
    /// Served throughput in MOPS over the tenant's lifetime.
    pub mops: f64,
    /// Median end-to-end latency (ns).
    pub p50_ns: u64,
    /// Tail latency (ns).
    pub p99_ns: u64,
    /// Deep-tail latency (ns) — the SLO class the p99.9 satellite exists
    /// for.
    pub p999_ns: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Peak concurrent blade assignment.
    pub blades_peak: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_workload_stays_in_bounds() {
        let mut wl = TenantWorkload::new(64, 0.5, SimRng::new(9));
        assert_eq!(wl.regions(), vec![64 << 12]);
        assert_eq!(wl.n_threads(), 1);
        for _ in 0..1000 {
            let op = wl.next_op(0);
            assert_eq!(op.region, 0);
            assert!(op.offset < 64 << 12);
        }
    }

    #[test]
    fn tenant_workload_read_ratio_respected() {
        let mut wl = TenantWorkload::new(1024, 0.8, SimRng::new(3));
        let reads = (0..20_000)
            .filter(|_| !wl.next_op(0).kind.is_write())
            .count();
        let frac = reads as f64 / 20_000.0;
        assert!((frac - 0.8).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn tenant_workload_is_deterministic() {
        let mut a = TenantWorkload::new(128, 0.5, SimRng::new(11));
        let mut b = TenantWorkload::new(128, 0.5, SimRng::new(11));
        for _ in 0..100 {
            assert_eq!(a.next_op(0), b.next_op(0));
        }
    }

    fn tenant_with_blades(blades: Vec<u16>) -> Tenant {
        Tenant {
            id: 1,
            pid: 10,
            qos: QosClass::Gold,
            region_base: 0,
            pages: 16,
            rate_hz: 1000.0,
            arrived_at: SimTime::ZERO,
            workload: TenantWorkload::new(16, 0.5, SimRng::new(1)),
            queue: VecDeque::new(),
            blades_peak: blades.len() as u16,
            blades,
            next_blade: 0,
            latency: Histogram::new(),
            ops: 0,
            rejected: 0,
            ops_this_epoch: 0,
        }
    }

    #[test]
    fn pick_blade_round_robins() {
        let mut t = tenant_with_blades(vec![0, 2, 3]);
        let picks: Vec<u16> = (0..6).map(|_| t.pick_blade()).collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn slo_reports_throughput_over_lifetime() {
        let mut t = tenant_with_blades(vec![0]);
        t.ops = 2_000_000;
        for v in [100u64, 200, 400] {
            t.latency.record(v);
        }
        let slo = t.slo(SimTime::from_secs(2), true);
        assert!((slo.mops - 1.0).abs() < 1e-9);
        assert!(slo.departed);
        assert!(slo.p50_ns <= slo.p99_ns && slo.p99_ns <= slo.p999_ns);
    }
}
