//! Tenant state: identity, protection domain, footprint, request
//! generator, and per-tenant SLO accounting.
//!
//! Each admitted tenant owns one protection domain (its PID on the rack),
//! one contiguous vma, a private fork of the service's seeded RNG (so a
//! run is deterministic regardless of how tenants interleave), and a
//! latency histogram from which its SLO report (p50/p99/p99.9,
//! throughput, rejects) is cut when it departs.

use std::collections::VecDeque;

use mind_core::controller::Pid;
use mind_core::system::AccessKind;
use mind_sim::rng::Zipfian;
use mind_sim::stats::Histogram;
use mind_sim::{SimRng, SimTime};
use mind_workloads::trace::{TraceOp, Workload};

use crate::qos::QosClass;

/// Service-level tenant identifier (distinct from the rack PID).
pub type TenantId = u64;

/// Cache-line stride of a scanning tenant (matches the TF/GC streaming
/// workloads' access granularity).
const SCAN_LINE: u64 = 64;

/// How a tenant walks its footprint — the per-class workload-diversity
/// axis of the serving scenarios. Pure `Copy` configuration so it rides
/// inside [`crate::ServiceConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Uniform random pages (the original tenant generator).
    Uniform,
    /// Zipfian-popular pages with the given skew (`theta < 1`; YCSB uses
    /// 0.99) — a hot-key cache-friendly tenant.
    Zipfian(f64),
    /// Sequential cache-line scan over the footprint — the streaming
    /// pattern of the TF/GC replay workloads, with high page locality but
    /// a working set that wraps through every page.
    Scan,
}

impl AccessPattern {
    /// Short label for reports and workload names. Interned so
    /// population-scale callers can hold or format it without a per-call
    /// (or worse, per-tenant) allocation — the label vocabulary is a
    /// handful of pattern names.
    pub fn label(&self) -> &'static str {
        match self {
            AccessPattern::Uniform => "uniform",
            AccessPattern::Zipfian(theta) => mind_sim::intern::intern(&format!("zipf{theta}")),
            AccessPattern::Scan => "scan",
        }
    }
}

/// Draws one operation of the given pattern — the single generator body
/// behind both per-tenant state layouts: [`TenantWorkload`] (one struct
/// per tenant, sampler included) and the service population's
/// structure-of-arrays groups (`crate::shard::TenantGroup`, which pools
/// one sampler and keeps only an RNG and a cursor per tenant). Sharing
/// the body is what keeps the two layouts byte-identical: same RNG draw
/// order, same offsets, same kinds.
pub(crate) fn sample_op(
    pages: u64,
    read_ratio: f64,
    pattern: AccessPattern,
    zipf: Option<&Zipfian>,
    cursor: &mut u64,
    rng: &mut SimRng,
) -> TraceOp {
    let offset = match pattern {
        AccessPattern::Uniform => rng.gen_below(pages) << 12,
        AccessPattern::Zipfian(_) => {
            zipf.expect("sampler built with pattern").sample(rng) << 12
        }
        AccessPattern::Scan => {
            let offset = (*cursor * SCAN_LINE) % (pages << 12);
            *cursor += 1;
            offset
        }
    };
    let kind = if rng.gen_bool(read_ratio) {
        AccessKind::Read
    } else {
        AccessKind::Write
    };
    TraceOp {
        region: 0,
        offset,
        kind,
    }
}

/// The tenant-scoped request generator: single-logical-thread
/// reads/writes over the tenant's own region, walked per the tenant's
/// [`AccessPattern`] — the [`Workload`] trait reused at per-tenant
/// granularity, so the service's traffic is built from the same
/// abstraction (and the same Zipfian/scan generators) the replay harness
/// uses.
#[derive(Debug)]
pub struct TenantWorkload {
    pages: u64,
    read_ratio: f64,
    pattern: AccessPattern,
    /// Zipfian sampler, built once when the pattern asks for it.
    zipf: Option<Zipfian>,
    /// Scan cursor (cache lines advanced).
    cursor: u64,
    rng: SimRng,
}

impl TenantWorkload {
    /// A uniform-random generator over `pages` 4 KB pages with the given
    /// read fraction.
    pub fn new(pages: u64, read_ratio: f64, rng: SimRng) -> Self {
        TenantWorkload::with_pattern(pages, read_ratio, AccessPattern::Uniform, rng)
    }

    /// A generator with an explicit access pattern.
    pub fn with_pattern(pages: u64, read_ratio: f64, pattern: AccessPattern, rng: SimRng) -> Self {
        let zipf = match pattern {
            AccessPattern::Zipfian(theta) => Some(Zipfian::new(pages, theta)),
            _ => None,
        };
        TenantWorkload {
            pages,
            read_ratio,
            pattern,
            zipf,
            cursor: 0,
            rng,
        }
    }

    /// The pattern in force.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }
}

impl Workload for TenantWorkload {
    fn name(&self) -> String {
        format!(
            "tenant(p={},r={},{})",
            self.pages,
            self.read_ratio,
            self.pattern.label()
        )
    }

    fn regions(&self) -> Vec<u64> {
        vec![self.pages << 12]
    }

    fn n_threads(&self) -> u16 {
        1
    }

    fn next_op(&mut self, _thread: u16) -> TraceOp {
        sample_op(
            self.pages,
            self.read_ratio,
            self.pattern,
            self.zipf.as_ref(),
            &mut self.cursor,
            &mut self.rng,
        )
    }
}

/// A queued request: when it entered the tenant's queue and what it asks.
#[derive(Debug, Clone, Copy)]
pub struct PendingRequest {
    /// Open-loop arrival time.
    pub enqueued_at: SimTime,
    /// The memory operation.
    pub op: TraceOp,
}

/// A live tenant.
#[derive(Debug)]
pub struct Tenant {
    /// Service-level id.
    pub id: TenantId,
    /// Rack PID — also the tenant's protection domain (PDID).
    pub pid: Pid,
    /// Service class.
    pub qos: QosClass,
    /// Base of the tenant's vma on the rack.
    pub region_base: u64,
    /// Footprint in 4 KB pages.
    pub pages: u64,
    /// Offered load, requests per simulated second.
    pub rate_hz: f64,
    /// Arrival time.
    pub arrived_at: SimTime,
    /// Request generator (private RNG fork).
    pub workload: TenantWorkload,
    /// Open-loop queue awaiting dispatch.
    pub queue: VecDeque<PendingRequest>,
    /// Compute blades currently assigned (at least one).
    pub blades: Vec<u16>,
    /// Peak blade-count watermark.
    pub blades_peak: u16,
    /// Round-robin cursor over `blades`.
    pub next_blade: usize,
    /// End-to-end request latency (queueing + memory access), ns.
    pub latency: Histogram,
    /// Requests served.
    pub ops: u64,
    /// Requests rejected (queue overflow) or dropped at departure.
    pub rejected: u64,
    /// Requests served since the last elasticity epoch.
    pub ops_this_epoch: u64,
}

impl Tenant {
    /// The blade the next dispatched request runs on (round-robin over the
    /// tenant's assigned blades).
    pub fn pick_blade(&mut self) -> u16 {
        let blade = self.blades[self.next_blade % self.blades.len()];
        self.next_blade = (self.next_blade + 1) % self.blades.len();
        blade
    }

    /// Cuts the tenant's SLO record at time `now`.
    pub fn slo(&self, now: SimTime, departed: bool) -> TenantSlo {
        let span = now.saturating_sub(self.arrived_at).as_secs_f64().max(1e-12);
        TenantSlo {
            tenant: self.id,
            qos: self.qos,
            pages: self.pages,
            arrived_at: self.arrived_at,
            departed,
            ops: self.ops,
            rejected: self.rejected,
            mops: self.ops as f64 / span / 1e6,
            p50_ns: self.latency.quantile(0.5),
            p99_ns: self.latency.quantile(0.99),
            p999_ns: self.latency.quantile(0.999),
            mean_ns: self.latency.mean(),
            blades_peak: self.blades_peak,
        }
    }
}

/// Per-tenant SLO report: what the serving layer owes each customer.
#[derive(Debug, Clone, Copy)]
pub struct TenantSlo {
    /// Service-level id.
    pub tenant: TenantId,
    /// Service class.
    pub qos: QosClass,
    /// Footprint in pages.
    pub pages: u64,
    /// Arrival time.
    pub arrived_at: SimTime,
    /// Whether the tenant departed before the run ended.
    pub departed: bool,
    /// Requests served.
    pub ops: u64,
    /// Requests rejected or dropped.
    pub rejected: u64,
    /// Served throughput in MOPS over the tenant's lifetime.
    pub mops: f64,
    /// Median end-to-end latency (ns).
    pub p50_ns: u64,
    /// Tail latency (ns).
    pub p99_ns: u64,
    /// Deep-tail latency (ns) — the SLO class the p99.9 satellite exists
    /// for.
    pub p999_ns: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Peak concurrent blade assignment.
    pub blades_peak: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_workload_stays_in_bounds() {
        let mut wl = TenantWorkload::new(64, 0.5, SimRng::new(9));
        assert_eq!(wl.regions(), vec![64 << 12]);
        assert_eq!(wl.n_threads(), 1);
        for _ in 0..1000 {
            let op = wl.next_op(0);
            assert_eq!(op.region, 0);
            assert!(op.offset < 64 << 12);
        }
    }

    #[test]
    fn tenant_workload_read_ratio_respected() {
        let mut wl = TenantWorkload::new(1024, 0.8, SimRng::new(3));
        let reads = (0..20_000)
            .filter(|_| !wl.next_op(0).kind.is_write())
            .count();
        let frac = reads as f64 / 20_000.0;
        assert!((frac - 0.8).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn zipfian_tenant_skews_toward_hot_pages() {
        let mut wl =
            TenantWorkload::with_pattern(1024, 0.5, AccessPattern::Zipfian(0.99), SimRng::new(5));
        assert!(wl.name().contains("zipf0.99"));
        let mut hot = 0u64;
        for _ in 0..20_000 {
            let op = wl.next_op(0);
            assert!(op.offset < 1024 << 12);
            if op.offset < 16 << 12 {
                hot += 1;
            }
        }
        // Uniform would put ~1.6% of accesses on the first 16 pages;
        // zipf(0.99) concentrates far more.
        assert!(hot > 4_000, "hot-page mass {hot}");
    }

    #[test]
    fn scan_tenant_streams_sequentially_with_page_locality() {
        let mut wl = TenantWorkload::with_pattern(8, 0.9, AccessPattern::Scan, SimRng::new(5));
        assert!(wl.name().contains("scan"));
        let mut prev = None;
        let mut page_changes = 0u64;
        let n = 4_000u64;
        for _ in 0..n {
            let op = wl.next_op(0);
            assert!(op.offset < 8 << 12);
            if let Some(p) = prev {
                assert_eq!(op.offset, (p + SCAN_LINE) % (8 << 12), "sequential");
                if op.offset >> 12 != p >> 12 {
                    page_changes += 1;
                }
            }
            prev = Some(op.offset);
        }
        // 64 lines per 4 KB page: high page locality.
        assert!(page_changes <= n / 60, "page changes {page_changes}");
    }

    #[test]
    fn tenant_workload_is_deterministic() {
        let mut a = TenantWorkload::new(128, 0.5, SimRng::new(11));
        let mut b = TenantWorkload::new(128, 0.5, SimRng::new(11));
        for _ in 0..100 {
            assert_eq!(a.next_op(0), b.next_op(0));
        }
    }

    fn tenant_with_blades(blades: Vec<u16>) -> Tenant {
        Tenant {
            id: 1,
            pid: 10,
            qos: QosClass::Gold,
            region_base: 0,
            pages: 16,
            rate_hz: 1000.0,
            arrived_at: SimTime::ZERO,
            workload: TenantWorkload::new(16, 0.5, SimRng::new(1)),
            queue: VecDeque::new(),
            blades_peak: blades.len() as u16,
            blades,
            next_blade: 0,
            latency: Histogram::new(),
            ops: 0,
            rejected: 0,
            ops_this_epoch: 0,
        }
    }

    #[test]
    fn pick_blade_round_robins() {
        let mut t = tenant_with_blades(vec![0, 2, 3]);
        let picks: Vec<u16> = (0..6).map(|_| t.pick_blade()).collect();
        assert_eq!(picks, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn slo_reports_throughput_over_lifetime() {
        let mut t = tenant_with_blades(vec![0]);
        t.ops = 2_000_000;
        for v in [100u64, 200, 400] {
            t.latency.record(v);
        }
        let slo = t.slo(SimTime::from_secs(2), true);
        assert!((slo.mops - 1.0).abs() < 1e-9);
        assert!(slo.departed);
        assert!(slo.p50_ns <= slo.p99_ns && slo.p99_ns <= slo.p999_ns);
    }
}
