//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this local crate provides
//! the subset of criterion's API the workspace benches use: `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: a short warm-up, then timed batches
//! until a wall-clock budget is spent, reporting mean ns/iter to stdout. It
//! is good enough for relative comparisons and for keeping the bench
//! binaries compiling and runnable; it makes no statistical claims.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 3;
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 10_000;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    MediumInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure given to `bench_function`; runs and times the
/// benchmark routine.
pub struct Bencher {
    label: String,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.report(start.elapsed(), iters);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while spent < MEASURE_BUDGET && iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.report(spent, iters);
    }

    fn report(&self, elapsed: Duration, iters: u64) {
        let ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        println!("{:<48} {:>14.1} ns/iter ({} iters)", self.label, ns_per_iter, iters);
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            label: name.to_string(),
        };
        f(&mut bencher);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            label: format!("{}/{}", self.name, name),
        };
        f(&mut bencher);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
