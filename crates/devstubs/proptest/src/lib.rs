//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this local crate
//! implements exactly the subset of proptest's API that the workspace's
//! property tests use: the [`proptest!`] macro over `ident in strategy`
//! arguments, [`ProptestConfig::with_cases`], integer-range / tuple /
//! `prop::collection::vec` / `prop::bool::ANY` strategies, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//! - case generation is **deterministic** (seeded per test case index), so
//!   CI failures reproduce exactly;
//! - there is **no shrinking** — a failing case panics with the assert
//!   message and the raw inputs are recoverable from the panic context.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Small deterministic RNG (xorshift64*) used to drive value generation.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self(seed ^ 0x9E37_79B9_7F4A_7C15 | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A generator of values for one `ident in strategy` binding.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64).wrapping_sub(*self.start() as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range (e.g. 0u64..=u64::MAX).
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod strategy_impls {
    use super::{Strategy, TestRng};

    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct VecStrategy<S> {
        pub element: S,
        pub size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` path namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub mod collection {
        use crate::strategy_impls::VecStrategy;
        use crate::Strategy;

        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }

    pub mod bool {
        pub const ANY: crate::strategy_impls::AnyBool = crate::strategy_impls::AnyBool;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest!` block macro: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test] fn name(ident in strategy, ...) { .. }`
/// items. Each test runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0u64..(__config.cases as u64) {
                    let mut __rng = $crate::TestRng::new(
                        __case.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(0x1234_5678),
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}
