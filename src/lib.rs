//! Umbrella crate for the MIND (SOSP 2021) reproduction workspace.
//!
//! This crate carries no logic of its own; it exists so the workspace-level
//! integration tests in `tests/` and the runnable examples in `examples/`
//! have a package to hang off, and it re-exports every sub-crate under one
//! roof for downstream convenience:
//!
//! | Re-export | Paper section | Contents |
//! |-----------|---------------|----------|
//! | [`sim`] | §7 methodology | deterministic event loop, RNG, stats |
//! | [`obs`] | §7 methodology | deterministic tracing, windowed telemetry, wall-clock profiling |
//! | [`net`] | §2, §4.4 | rack fabric, links, multicast, reliability |
//! | [`switch`] | §2.1, §6.3 | TCAM, SRAM slots, MAU pipeline |
//! | [`blade`] | §6.1, §6.2 | compute-blade cache, memory blade |
//! | [`core`] | §4–§6 | translation, protection, coherence, splitting |
//! | [`baselines`] | §7 | GAM and FastSwap comparison systems |
//! | [`workloads`] | §7.1 | TF / GC / MA / MC generators, trace runner |
//! | [`service`] | beyond the paper | multi-tenant serving: churn, QoS classes, elastic blades, per-tenant SLOs |
//! | [`harness`] | §7–§8 | declarative experiment engine: scenario tables, parallel execution, JSON reports |
//! | [`bench`] | §7 | figure scenario tables and binaries |

pub use mind_baselines as baselines;
pub use mind_bench as bench;
pub use mind_harness as harness;
pub use mind_blade as blade;
pub use mind_core as core;
pub use mind_net as net;
pub use mind_obs as obs;
pub use mind_service as service;
pub use mind_sim as sim;
pub use mind_switch as switch;
pub use mind_workloads as workloads;
