//! The sharded simulation's core guarantee: replaying a partitioned
//! scenario as `shards` independent sub-clusters advanced through
//! conservative time windows renders **byte-identical** BENCH JSON to the
//! serialized fused reference — for `shards = 1` unconditionally, and for
//! `shards > 1` whenever the scenario honours the confinement contract
//! spelled out in `mind_workloads::shard` (symmetric partitions, slice
//! confinement, zero invalidations, directory utilization at or below
//! one half).
//!
//! Three scenario families cover the contract's surface: a micro-style
//! partition (shared + private regions, writes confined to one blade), a
//! read-only YCSB-C KVS partition, and the `mind_service` multi-tenant
//! population with one protection domain per tenant.
//!
//! The guarantee extends across the executor's **OS-thread axis**: every
//! (shard count × thread count) cell must render the identical JSON —
//! thread counts (and thus completion order) are scheduling decisions,
//! never semantic ones — including when the sharded run is itself nested
//! inside a parallel harness engine (`MIND_THREADS`, exercised by the CI
//! matrix).

use proptest::prelude::*;

use mind::core::cluster::MindConfig;
use mind::harness::{report, Engine, Scenario, ScenarioOutput, ScenarioResult, WorkloadSpec};
use mind::service::{tenant_partitions, TenantGroupConfig};
use mind::sim::{EventQueue, SimRng, SimTime};
use mind::workloads::kvs::KvsConfig;
use mind::workloads::micro::MicroConfig;
use mind::workloads::runner::{RunConfig, RunReport};
use mind::workloads::shard::PartitionFactory;
use mind::workloads::{run_group, run_sharded, run_sharded_threads, ShardSpec};

/// A four-partition rack whose resources divide evenly into 1, 2, or 4
/// shards; the directory is sized so even fully split regions stay well
/// under the contract's 1/2 utilization ceiling.
fn rack(partitions: u16) -> MindConfig {
    MindConfig {
        n_compute: partitions,
        n_memory: partitions,
        cache_pages: 1_024,
        blade_span: 1 << 26,
        memory_blade_bytes: 1 << 26,
        dir_capacity: 16_384,
        rule_capacity: 8_192,
        ..MindConfig::default()
    }
}

fn spec(name: &str, threads_per_partition: u16, domain_per_thread: bool) -> ShardSpec {
    ShardSpec {
        name: name.to_string(),
        base: rack(4),
        partitions: 4,
        run: RunConfig {
            ops_per_thread: 240,
            warmup_ops_per_thread: 40,
            // The whole partition on one compute blade: writes then touch
            // a single cache, so no invalidations couple the partitions.
            threads_per_blade: threads_per_partition,
            ..Default::default()
        }
        .with_batch_ops(8),
        horizon: SimTime::from_micros(50),
        domain_per_thread,
    }
}

/// Renders a group/merged report exactly as the bench suite would.
fn bench_json(report: RunReport) -> String {
    let result = ScenarioResult {
        name: report.name.clone(),
        output: ScenarioOutput::from_report(report),
    };
    report::suite_json("shard_equivalence", &[result]).render()
}

/// The fused reference versus every (shard count × OS-thread count)
/// cell, compared on the full rendered BENCH JSON (values, metrics,
/// series — everything).
fn assert_shards_reproduce_fused(spec: &ShardSpec, factory: &PartitionFactory) {
    let fused = run_group(spec, factory).expect("confined scenario");
    assert_eq!(
        fused.invalidations, 0,
        "{}: scenario must be confined for the contract to hold",
        spec.name
    );
    assert!(fused.total_ops > 0, "{}: the run did work", spec.name);
    let reference = bench_json(fused);
    for shards in [1u16, 2, 4] {
        for threads in [1usize, 2, 4] {
            let merged = bench_json(
                run_sharded_threads(spec, shards, threads, factory).expect("confined scenario"),
            );
            assert_eq!(
                merged, reference,
                "{} BENCH JSON diverged from the fused reference at \
                 shards = {shards}, threads = {threads}",
                spec.name
            );
        }
    }
}

#[test]
fn micro_partitions_render_identical_bench_json() {
    let factory = |p: u16| {
        WorkloadSpec::Micro(MicroConfig {
            n_threads: 4,
            shared_pages: 512,
            private_pages: 64,
            seed: 7 + p as u64,
            ..Default::default()
        })
        .build()
    };
    assert_shards_reproduce_fused(&spec("shard-equiv/micro", 4, false), &factory);
}

#[test]
fn kvs_ycsb_c_partitions_render_identical_bench_json() {
    // YCSB-C is read-only, so even cross-blade sharing inside a
    // partition cannot generate invalidations.
    let factory = |p: u16| {
        WorkloadSpec::Kvs(KvsConfig {
            n_partitions: 4,
            partition_pages: 64,
            seed: 17 + p as u64,
            ..KvsConfig::ycsb_c(4)
        })
        .build()
    };
    assert_shards_reproduce_fused(&spec("shard-equiv/kvs", 4, false), &factory);
}

#[test]
fn service_tenant_partitions_render_identical_bench_json() {
    // The mind_service population: one replay thread, one region, and —
    // via `domain_per_thread` — one protection domain per tenant.
    let factory = tenant_partitions(TenantGroupConfig {
        tenants_per_group: 8,
        pages_per_tenant: 16,
        read_ratio: 0.7,
        seed: 42,
    });
    assert_shards_reproduce_fused(&spec("shard-equiv/service", 8, true), &factory);
}

#[test]
fn sharded_runs_nested_in_a_parallel_engine_render_identical_bench_json() {
    // The whole stack at once: a scenario table whose cells each run a
    // multi-threaded sharded replay, executed under the environment-sized
    // engine (the CI matrix sets MIND_THREADS to 1 and 4) and under a
    // serial engine. The rendered suite JSON must match byte for byte —
    // engine workers, shard threads, and the budget's arbitration between
    // them are all scheduling-only.
    let table = || -> Vec<Scenario> {
        [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                Scenario::custom(format!("shard-equiv/nested-t{threads}"), move || {
                    let factory = tenant_partitions(TenantGroupConfig {
                        tenants_per_group: 8,
                        pages_per_tenant: 16,
                        read_ratio: 0.7,
                        seed: 42,
                    });
                    let s = spec("shard-equiv/nested", 8, true);
                    let merged = run_sharded_threads(&s, 4, threads, &factory)
                        .expect("confined scenario");
                    ScenarioOutput::from_report(merged)
                })
            })
            .collect()
    };
    let serial = report::suite_json("shard_equivalence", &Engine::new(1).run(table())).render();
    let parallel =
        report::suite_json("shard_equivalence", &Engine::from_env().run(table())).render();
    assert_eq!(
        serial, parallel,
        "suite JSON diverged between a serial and an environment-sized engine"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The conservative-window drain never executes an event out of
    /// timestamp order: within every horizon window, pops are
    /// nondecreasing in time and never pass the window's horizon, and the
    /// clock never regresses across windows — even while handlers keep
    /// rescheduling follow-up events at or after the current time,
    /// exactly as a partition's turn loop does.
    #[test]
    fn windowed_drain_pops_stay_in_timestamp_order(
        seed in 0u64..10_000,
        horizon_ns in 1u64..5_000,
        n_events in 1usize..64,
    ) {
        let mut rng = SimRng::new(seed);
        let mut queue: EventQueue<u32> = EventQueue::new();
        for id in 0..n_events as u32 {
            queue.schedule(SimTime::from_nanos(rng.gen_below(10_000)), id);
        }
        let step = SimTime::from_nanos(horizon_ns);
        let mut horizon = step;
        let mut clock = SimTime::ZERO;
        let mut reschedules_left = n_events;
        let mut popped = 0usize;
        while !queue.is_empty() {
            let mut window_clock = SimTime::ZERO;
            while let Some(at) = queue.peek_time() {
                if at > horizon {
                    break;
                }
                let ev = queue.pop().expect("peeked event exists");
                prop_assert!(ev.at <= horizon, "event executed past the horizon");
                prop_assert!(ev.at >= window_clock, "pops regressed within a window");
                prop_assert!(ev.at >= clock, "the clock went backwards across windows");
                window_clock = ev.at;
                clock = ev.at;
                popped += 1;
                if reschedules_left > 0 && rng.gen_bool(0.5) {
                    reschedules_left -= 1;
                    queue.schedule(ev.at + SimTime::from_nanos(rng.gen_below(3_000)), ev.event);
                }
            }
            horizon += step;
        }
        prop_assert_eq!(popped, n_events + (n_events - reschedules_left));
    }

    /// The window length is a scheduling knob, never a semantic one: any
    /// horizon merges to the same report as the fused reference.
    #[test]
    fn random_horizons_never_change_the_merged_report(
        horizon_us in 1u64..2_000,
        shard_choice in 0usize..3,
    ) {
        let shards = [1u16, 2, 4][shard_choice];
        let factory = tenant_partitions(TenantGroupConfig {
            tenants_per_group: 2,
            pages_per_tenant: 8,
            read_ratio: 0.7,
            seed: 9,
        });
        let mut s = spec("shard-equiv/horizon", 2, true);
        s.run.ops_per_thread = 60;
        s.run.warmup_ops_per_thread = 10;
        s.horizon = SimTime::from_micros(horizon_us);
        let fused = bench_json(run_group(&s, &factory).expect("confined scenario"));
        let merged = bench_json(run_sharded(&s, shards, &factory).expect("confined scenario"));
        prop_assert_eq!(
            merged,
            fused,
            "horizon {}us diverged at shards = {}",
            horizon_us,
            shards
        );
    }

    /// The window-epoch merge never depends on OS-thread completion
    /// order: any thread count — dividing the shard count or not, larger
    /// than it or not — merges to the same report, at any window length.
    /// (Thread counts shift which worker owns which shards and how often
    /// the barrier rotates the finishing order; none of it may show.)
    #[test]
    fn random_thread_counts_never_change_the_merged_report(
        threads in 1usize..9,
        horizon_us in 1u64..500,
    ) {
        let factory = tenant_partitions(TenantGroupConfig {
            tenants_per_group: 2,
            pages_per_tenant: 8,
            read_ratio: 0.7,
            seed: 9,
        });
        let mut s = spec("shard-equiv/threads", 2, true);
        s.run.ops_per_thread = 60;
        s.run.warmup_ops_per_thread = 10;
        s.horizon = SimTime::from_micros(horizon_us);
        let reference = bench_json(run_sharded_threads(&s, 4, 1, &factory).expect("confined"));
        let merged = bench_json(run_sharded_threads(&s, 4, threads, &factory).expect("confined"));
        prop_assert_eq!(
            merged,
            reference,
            "threads = {} diverged at horizon {}us",
            threads,
            horizon_us
        );
    }
}
