//! The streamed constant-memory merge contract: folding per-shard
//! reports into a running accumulator **as each shard completes** must
//! render byte-identical output to the in-memory path that collects
//! every report first and merges the whole `Vec` at once — for every
//! shard count × thread count cell, traced and untraced.
//!
//! Two layers are covered:
//!
//! - **End to end**: `run_sharded_threads` (lazy shard build, worker
//!   lanes, `StreamedMerge` fold) against a reference that materializes
//!   every shard's report in memory and merges them through
//!   `merge_reports` — the exact shape the executor had before the
//!   streaming fold existed.
//! - **The reorder buffer in isolation**: a proptest offers the same
//!   reports to `StreamedMerge` in arbitrary completion orders and
//!   checks the fused bytes never move — fold order is a function of
//!   shard *indices* alone, so completion order, thread count, and OS
//!   scheduling cannot reach it. Trace merge is the part that would
//!   break (it extends event vectors), so the proptest runs traced.

use proptest::prelude::*;

use mind::core::cluster::MindConfig;
use mind::harness::{report, ScenarioOutput, ScenarioResult, WorkloadSpec};
use mind::obs::{TraceConfig, TraceMode};
use mind::service::{tenant_partitions, TenantGroupConfig};
use mind::sim::{SimRng, SimTime};
use mind::workloads::micro::MicroConfig;
use mind::workloads::runner::{RunConfig, RunReport};
use mind::workloads::shard::{GroupRun, PartitionFactory};
use mind::workloads::{merge_reports, run_sharded_threads, ShardSpec, StreamedMerge, Workload};

/// A four-partition rack whose resources divide evenly into 1, 2, or 4
/// shards (mirrors `tests/shard_equivalence.rs`).
fn rack(partitions: u16) -> MindConfig {
    MindConfig {
        n_compute: partitions,
        n_memory: partitions,
        cache_pages: 1_024,
        blade_span: 1 << 26,
        memory_blade_bytes: 1 << 26,
        dir_capacity: 16_384,
        rule_capacity: 8_192,
        ..MindConfig::default()
    }
}

fn spec(name: &str, threads_per_partition: u16, domain_per_thread: bool, traced: bool) -> ShardSpec {
    let mode = if traced { TraceMode::On } else { TraceMode::Off };
    ShardSpec {
        name: name.to_string(),
        // The cluster trace is configured on the system config; the run
        // config's copy gates the windowed timeseries.
        base: MindConfig {
            trace: TraceConfig::with_mode(mode),
            ..rack(4)
        },
        partitions: 4,
        run: RunConfig {
            ops_per_thread: 160,
            warmup_ops_per_thread: 24,
            threads_per_blade: threads_per_partition,
            ..Default::default()
        }
        .with_batch_ops(8)
        .with_trace(TraceConfig::with_mode(mode)),
        horizon: SimTime::from_micros(50),
        domain_per_thread,
    }
}

/// Renders a merged report exactly as the bench suite would.
fn bench_json(report: RunReport) -> String {
    let result = ScenarioResult {
        name: report.name.clone(),
        output: ScenarioOutput::from_report(report),
    };
    report::suite_json("streamed_merge", &[result]).render()
}

/// Runs shard `s` to completion through the same conservative-horizon
/// loop the streamed executor uses, with trace lanes rebased onto the
/// fused rack's global blade indices. `TraceMode::On` records only the
/// grouping-invariant event set (shard-epoch marks are `Full`-only), so
/// this public-API loop reproduces the executor's per-shard report
/// byte for byte.
fn run_shard_in_memory(
    spec: &ShardSpec,
    sub: MindConfig,
    per_shard: u16,
    s: u16,
    factory: &PartitionFactory,
) -> RunReport {
    let mut group = GroupRun::new(
        format!("{}/shard{s}", spec.name),
        sub,
        s * per_shard,
        per_shard,
        spec.run,
        spec.domain_per_thread,
        factory,
    )
    .expect("confined scenario");
    let mut horizon = spec.horizon;
    while !group.advance_until(horizon) {
        horizon += spec.horizon;
    }
    let mut report = group.finish();
    if let Some(t) = &mut report.trace {
        t.rebase_lanes(s as u32 * sub.n_compute as u32);
    }
    report
}

/// The in-memory reference: every shard report materialized in a `Vec`,
/// then merged at once in index order.
fn shard_reports(spec: &ShardSpec, shards: u16, factory: &PartitionFactory) -> Vec<RunReport> {
    let sub = spec.base.try_partition(shards).expect("symmetric rack");
    let per_shard = spec.partitions / shards;
    (0..shards)
        .map(|s| run_shard_in_memory(spec, sub, per_shard, s, factory))
        .collect()
}

fn assert_reports_identical(label: &str, reference: &RunReport, streamed: &RunReport) {
    assert_eq!(
        reference.trace, streamed.trace,
        "{label}: merged trace diverged from the in-memory merge"
    );
    assert_eq!(
        bench_json(reference.clone()),
        bench_json(streamed.clone()),
        "{label}: merged BENCH JSON diverged from the in-memory merge"
    );
}

/// Every shard count × thread count cell of the streamed executor
/// against the in-memory reference.
fn assert_streamed_matches_in_memory(spec: &ShardSpec, factory: &PartitionFactory) {
    for shards in [1u16, 2, 4] {
        let reports = shard_reports(spec, shards, factory);
        let reference = merge_reports(spec.name.clone(), &reports);
        assert!(reference.total_ops > 0, "{}: the run did work", spec.name);
        if spec.run.trace.enabled() {
            assert!(
                reference.trace.as_ref().is_some_and(|t| !t.events.is_empty()),
                "{}: traced cells must actually carry events",
                spec.name
            );
        }
        for threads in [1usize, 2, 4] {
            let streamed =
                run_sharded_threads(spec, shards, threads, factory).expect("confined scenario");
            assert_reports_identical(
                &format!("{} shards={shards} threads={threads}", spec.name),
                &reference,
                &streamed,
            );
        }
    }
}

fn micro_factory() -> impl Fn(u16) -> Box<dyn Workload> + Sync {
    |p: u16| {
        WorkloadSpec::Micro(MicroConfig {
            n_threads: 4,
            shared_pages: 512,
            private_pages: 64,
            seed: 7 + p as u64,
            ..Default::default()
        })
        .build()
    }
}

fn service_factory() -> impl Fn(u16) -> Box<dyn Workload> + Sync {
    tenant_partitions(TenantGroupConfig {
        tenants_per_group: 8,
        pages_per_tenant: 16,
        read_ratio: 0.7,
        seed: 42,
    })
}

#[test]
fn micro_streamed_merge_matches_in_memory_untraced() {
    assert_streamed_matches_in_memory(
        &spec("streamed/micro", 4, false, false),
        &micro_factory(),
    );
}

#[test]
fn micro_streamed_merge_matches_in_memory_traced() {
    assert_streamed_matches_in_memory(&spec("streamed/micro-on", 4, false, true), &micro_factory());
}

#[test]
fn service_streamed_merge_matches_in_memory_untraced() {
    assert_streamed_matches_in_memory(
        &spec("streamed/service", 8, true, false),
        &service_factory(),
    );
}

#[test]
fn service_streamed_merge_matches_in_memory_traced() {
    assert_streamed_matches_in_memory(
        &spec("streamed/service-on", 8, true, true),
        &service_factory(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reorder buffer makes the fold order a function of shard
    /// indices alone: offering the same per-shard reports in *any*
    /// completion order fuses to the same bytes as the index-order
    /// in-memory merge. Runs traced because trace merge (vector
    /// extension) is the one fold that is order-sensitive — integer
    /// folds would pass this trivially. Along the way the accounting
    /// invariant holds: everything offered is either folded or parked
    /// in the buffer.
    #[test]
    fn reorder_buffer_fold_is_completion_order_invariant(seed in 0u64..10_000) {
        let factory = service_factory();
        let mut s = spec("streamed/reorder", 8, true, true);
        s.run.ops_per_thread = 60;
        s.run.warmup_ops_per_thread = 10;
        let shards = 4u16;
        let reports = shard_reports(&s, shards, &factory);
        let reference = merge_reports(s.name.clone(), &reports);

        // A seeded Fisher-Yates permutation stands in for an arbitrary
        // completion order.
        let mut rng = SimRng::new(seed);
        let mut order: Vec<usize> = (0..shards as usize).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_below(i as u64 + 1) as usize;
            order.swap(i, j);
        }

        let mut merge = StreamedMerge::new(s.name.clone(), shards as usize);
        for (offered, &shard) in order.iter().enumerate() {
            merge.offer(shard, reports[shard].clone());
            prop_assert_eq!(
                merge.folded() + merge.pending(),
                offered + 1,
                "every offered report is folded or buffered"
            );
        }
        prop_assert_eq!(merge.pending(), 0, "a complete offer set drains the buffer");
        let streamed = merge.finish();
        prop_assert_eq!(
            streamed.trace.clone(),
            reference.trace.clone(),
            "trace fold depended on completion order {:?}",
            order
        );
        prop_assert_eq!(
            bench_json(streamed),
            bench_json(reference),
            "merged bytes depended on completion order {:?}",
            order
        );
    }
}
