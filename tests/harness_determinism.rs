//! The engine's core guarantee: a scenario table executed across any
//! number of worker threads produces output byte-identical to a serial
//! run — thread scheduling decides only *when* a scenario runs, never
//! *what* it computes.

use mind::core::cluster::MindConfig;
use mind::core::system::ConsistencyModel;
use mind::harness::{report, Engine, Scenario, ScenarioOutput, ServiceSpec, SystemSpec, WorkloadSpec};
use mind::service::{tenant_partitions, ServiceConfig, TenantGroupConfig};
use mind::sim::SimTime;
use mind::workloads::kvs::KvsConfig;
use mind::workloads::micro::MicroConfig;
use mind::workloads::runner::RunConfig;
use mind::workloads::{run_sharded, ShardSpec};

/// A small but representative table: all three system kinds, two workload
/// families, plus a custom scenario — and uneven per-scenario costs so a
/// parallel run genuinely completes out of table order.
fn table() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    let micro = WorkloadSpec::Micro(MicroConfig {
        n_threads: 4,
        shared_pages: 2_048,
        private_pages: 256,
        ..Default::default()
    });
    let regions = micro.regions();
    let run = RunConfig {
        ops_per_thread: 1_500,
        warmup_ops_per_thread: 250,
        threads_per_blade: 2,
        ..Default::default()
    };
    for (i, system) in [
        SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso),
        SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Pso),
        SystemSpec::gam_scaled(&regions, 2, 2),
    ]
    .into_iter()
    .enumerate()
    {
        scenarios.push(Scenario::replay(
            format!("det/micro/{}/{i}", system.label()),
            system,
            micro,
            run,
        ));
    }
    let fs_run = RunConfig {
        threads_per_blade: 4,
        ..run
    };
    scenarios.push(Scenario::replay(
        "det/micro/FastSwap",
        SystemSpec::fastswap_scaled(&regions),
        micro,
        fs_run,
    ));

    let kvs = WorkloadSpec::Kvs(KvsConfig {
        partition_pages: 64,
        ..KvsConfig::ycsb_a(4)
    });
    let kvs_regions = kvs.regions();
    scenarios.push(Scenario::replay(
        "det/kvs/MIND",
        SystemSpec::mind_scaled(&kvs_regions, 2, ConsistencyModel::Tso),
        kvs,
        run,
    ));

    scenarios.push(Scenario::service(
        "det/service",
        ServiceSpec::new(ServiceConfig {
            duration: SimTime::from_millis(20),
            ..Default::default()
        }),
    ));

    scenarios.push(Scenario::custom("det/custom", || {
        ScenarioOutput::default()
            .value("answer", 42.0)
            .with_series("ts", vec![(0.0, 1.0), (1.0, 0.5)])
    }));

    // A batched-datapath replay: the op-batch pipeline must be just as
    // schedule-independent across worker threads as the scalar one.
    scenarios.push(Scenario::replay(
        "det/micro/MIND/batched16",
        SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso),
        micro,
        run.with_batch_ops(16),
    ));

    // A sharded large-scenario replay: the merged windowed report must be
    // just as worker-count independent as any single-cluster scenario.
    scenarios.push(Scenario::custom("det/sharded", || {
        let spec = ShardSpec {
            name: "det/sharded".to_string(),
            base: MindConfig {
                n_compute: 2,
                n_memory: 2,
                cache_pages: 512,
                blade_span: 1 << 26,
                memory_blade_bytes: 1 << 26,
                dir_capacity: 8_192,
                rule_capacity: 4_096,
                ..MindConfig::default()
            },
            partitions: 2,
            run: RunConfig {
                ops_per_thread: 400,
                warmup_ops_per_thread: 80,
                threads_per_blade: 2,
                ..Default::default()
            }
            .with_batch_ops(8),
            horizon: SimTime::from_micros(50),
            domain_per_thread: true,
        };
        let factory = tenant_partitions(TenantGroupConfig {
            tenants_per_group: 2,
            pages_per_tenant: 16,
            read_ratio: 0.7,
            seed: 42,
        });
        ScenarioOutput::from_report(run_sharded(&spec, 2, &factory).expect("confined scenario"))
    }));
    scenarios
}

#[test]
fn parallel_suite_json_is_byte_identical_to_serial() {
    let serial = Engine::new(1).run(table());
    let reference = report::suite_json("determinism", &serial).render();
    assert!(reference.contains("\"det/kvs/MIND\""));

    for threads in [2, 4, 7] {
        let parallel = Engine::new(threads).run(table());
        let rendered = report::suite_json("determinism", &parallel).render();
        assert_eq!(
            rendered, reference,
            "JSON diverged at {threads} worker threads"
        );
    }
}

#[test]
fn scenario_names_carry_sweep_parameters() {
    let results = Engine::new(2).run(table());
    assert_eq!(results[0].name, "det/micro/MIND/0");
    assert_eq!(results[1].name, "det/micro/MIND-PSO/1");
    // The workload-level report name is parameterized too (satellite:
    // owned names instead of a shared static label).
    assert_eq!(results[0].report().name, "micro(r=0.5,s=0.5)");
    assert!(results[4].report().name.starts_with("KVS-A(p="));
    assert!(results[5].service().tenants_admitted > 0, "service ran");
}

/// The new-subsystem acceptance bar: the `service` suite's quick tables
/// (exactly what the `service --quick` binary runs) render to
/// byte-identical `BENCH_service.json` at 1, 2, and 4 workers.
#[test]
fn service_suite_json_is_byte_identical_across_workers() {
    let build = || {
        let mut table = Vec::new();
        for figure in mind::bench::figures::matching("service") {
            table.extend((figure.build)(true));
        }
        table
    };
    let serial = Engine::new(1).run(build());
    let reference = report::suite_json("service", &serial).render();
    assert!(reference.contains("\"service_qos/load1\""));
    assert!(reference.contains("\"service_churn/arrivals3200\""));
    assert!(reference.contains("\"service_elastic/rate80000\""));
    assert!(reference.contains("\"p999_ns\""));

    for threads in [2, 4] {
        let parallel = Engine::new(threads).run(build());
        let rendered = report::suite_json("service", &parallel).render();
        assert_eq!(
            rendered, reference,
            "BENCH_service.json diverged at {threads} worker threads"
        );
    }
}
