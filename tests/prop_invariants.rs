//! Property-based tests over the core data structures and the paper's
//! formal claims (Theorem 5.1, TCAM LPM, allocation disjointness, cache
//! and coherence invariants).

use proptest::prelude::*;

use mind_blade::DramCache;
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::directory::RegionDirectory;
use mind_core::galloc::GlobalAllocator;
use mind_core::split::{BoundedSplitting, SplitConfig};
use mind_core::system::AccessKind;
use mind_net::node::BladeSet;
use mind_sim::SimTime;
use mind_switch::tcam::{pow2_cover, Tcam, TcamEntry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pow2_cover tiles the range exactly with aligned power-of-two pieces,
    /// bounded by 2*log2(len) pieces.
    #[test]
    fn pow2_cover_tiles_exactly(base in 0u64..(1 << 40), len in 1u64..(1 << 30)) {
        let base = base & !0xFFF;
        let len = (len + 0xFFF) & !0xFFF;
        let pieces = pow2_cover(base, len);
        let mut cursor = base;
        for &(b, k) in &pieces {
            prop_assert_eq!(b, cursor, "contiguous");
            prop_assert_eq!(b & ((1u64 << k) - 1), 0, "aligned");
            cursor += 1u64 << k;
        }
        prop_assert_eq!(cursor, base + len, "covers exactly");
        prop_assert!(pieces.len() <= 2 * (64 - len.leading_zeros()) as usize);
    }

    /// The allocator never hands out overlapping reservations, keeps its
    /// byte accounting exact, and frees restore capacity.
    #[test]
    fn allocator_disjoint_and_conserving(ops in prop::collection::vec((0u8..2, 1u64..(1 << 22)), 1..60)) {
        let mut galloc = GlobalAllocator::new(4, 1 << 26);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (op, len) in ops {
            if op == 0 || live.is_empty() {
                if let Some(vma) = galloc.alloc(len) {
                    let size = galloc.reserved_size(vma.base).unwrap();
                    for &(b, s) in &live {
                        prop_assert!(vma.base + size <= b || b + s <= vma.base,
                            "overlap: [{:#x},+{:#x}) vs [{:#x},+{:#x})", vma.base, size, b, s);
                    }
                    live.push((vma.base, size));
                }
            } else {
                let idx = (len as usize) % live.len();
                let (base, _) = live.swap_remove(idx);
                prop_assert!(galloc.dealloc(base));
            }
            let total: u64 = galloc.allocated_per_blade().iter().sum();
            let expect: u64 = live.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(total, expect, "byte accounting");
        }
        for (base, _) in live {
            galloc.dealloc(base);
        }
        prop_assert_eq!(galloc.allocated_per_blade().iter().sum::<u64>(), 0);
    }

    /// TCAM longest-prefix-match agrees with a naive reference scan.
    #[test]
    fn tcam_lpm_matches_reference(
        entries in prop::collection::vec((0u64..4, 0u64..(1 << 24), 12u8..22), 1..40),
        probes in prop::collection::vec((0u64..4, 0u64..(1 << 24)), 1..50),
    ) {
        let mut tcam: Tcam<usize> = Tcam::new(10_000);
        let mut reference: Vec<(u64, u64, u8, usize)> = Vec::new();
        for (i, (ctx, base, k)) in entries.into_iter().enumerate() {
            let base = (base >> k) << k;
            let entry = TcamEntry::new(ctx, base, k);
            tcam.insert(entry, i).unwrap();
            reference.retain(|&(c, b, kk, _)| !(c == ctx && b == base && kk == k));
            reference.push((ctx, base, k, i));
        }
        for (ctx, addr) in probes {
            let expect = reference
                .iter()
                .filter(|&&(c, b, k, _)| c == ctx && addr >> k == b >> k)
                .min_by_key(|&&(_, _, k, _)| k)
                .map(|&(_, _, _, v)| v);
            let got = tcam.lookup(ctx, addr).map(|(_, &v)| v);
            prop_assert_eq!(got, expect);
        }
    }

    /// Directory regions always form a disjoint, aligned partition, and
    /// region_of agrees with the entry set, under random churn.
    #[test]
    fn directory_partition_invariant(ops in prop::collection::vec((0u8..3, 0u64..(1 << 22)), 1..120)) {
        let mut dir = RegionDirectory::new(4_000, 14);
        for (op, addr) in ops {
            match op {
                0 => { let _ = dir.ensure_region(addr); }
                1 => {
                    if let Some((base, k)) = dir.region_of(addr) {
                        if k > 12 {
                            let _ = dir.split(base);
                        }
                    }
                }
                _ => {
                    if let Some((base, _)) = dir.region_of(addr) {
                        let _ = dir.merge(base);
                    }
                }
            }
            // Invariant: regions are aligned, pow2, disjoint, and indexed.
            let bases = dir.bases_sorted();
            let mut prev_end = 0u64;
            for base in bases {
                let e = dir.entry(base).unwrap();
                let size = 1u64 << e.size_log2;
                prop_assert_eq!(base % size, 0, "aligned");
                prop_assert!(base >= prev_end, "disjoint");
                prev_end = base + size;
                prop_assert_eq!(dir.region_of(base), Some((base, e.size_log2)));
                prop_assert_eq!(dir.region_of(base + size - 1), Some((base, e.size_log2)));
            }
        }
    }

    /// Theorem 5.1: a region with per-epoch false-invalidation count f
    /// under threshold t yields at most (ceil(f/t) - 1)(1 + log2 M)
    /// sub-regions.
    #[test]
    fn theorem_5_1_bound_holds(f_per_epoch in 1u32..40, seed in 0u64..100) {
        let _ = seed;
        let mut bs = BoundedSplitting::new(SplitConfig {
            initial_region_log2: 21, // 2 MB.
            enable_merge: false,
            c: 1.0,
            ..Default::default()
        });
        let mut dir = RegionDirectory::new(100_000, 21);
        dir.ensure_region(0).unwrap();
        // A cold sibling keeps N >= 2 so t stays below the hot count.
        dir.ensure_region(1 << 30).unwrap();
        let mut min_t = f64::MAX;
        for epoch in 1..=12u64 {
            // Observation O1: the false-invalidation count of a region is
            // conserved (children sum to at most the parent). Model the
            // worst case by concentrating the whole per-epoch count f on
            // the sub-region containing address 0.
            let (hot, _) = dir.region_of(0).unwrap();
            dir.record_invalidation(hot, f_per_epoch);
            let report = bs.run_epoch(SimTime::from_millis(epoch * 100), &mut dir);
            min_t = min_t.min(report.threshold);
        }
        let hot_regions = dir.bases_sorted().iter().filter(|&&b| b < (1 << 21)).count() as u64;
        // Case 2 of Theorem 5.1: with f concentrated on one chain the
        // region splits at most once per epoch down to the 4 KB floor,
        // yielding at most 1 + log2(M / 4K) sub-regions.
        let bound = BoundedSplitting::theorem_bound(2 * f_per_epoch as u64, f_per_epoch as f64, 21);
        prop_assert!(
            hot_regions <= bound,
            "{} regions exceed Theorem 5.1 Case-2 bound {}",
            hot_regions,
            bound
        );
    }

    /// The DRAM cache never exceeds capacity and tracks membership like a
    /// reference set.
    #[test]
    fn cache_capacity_and_membership(ops in prop::collection::vec((0u64..64, prop::bool::ANY), 1..300)) {
        let capacity = 16u32;
        let mut cache = DramCache::new(capacity);
        let mut reference: std::collections::HashSet<u64> = Default::default();
        for (page_idx, write) in ops {
            let page = page_idx << 12;
            match cache.access(page, write) {
                mind_blade::CacheLookup::Hit => {
                    prop_assert!(reference.contains(&page), "hit implies resident");
                }
                mind_blade::CacheLookup::NeedUpgrade => {
                    cache.grant_write(page);
                    prop_assert!(reference.contains(&page));
                }
                mind_blade::CacheLookup::Miss => {
                    prop_assert!(!reference.contains(&page), "miss implies absent");
                    if let Some(ev) = cache.insert(page, write, None) {
                        reference.remove(&ev.page);
                    }
                    reference.insert(page);
                }
            }
            prop_assert!(cache.resident_pages() <= capacity as usize);
            prop_assert_eq!(cache.resident_pages(), reference.len());
        }
    }

    /// BladeSet behaves like a HashSet<u16> under union/difference/insert.
    #[test]
    fn bladeset_matches_hashset(ops in prop::collection::vec((0u8..3, 0u16..64), 1..100)) {
        let mut set = BladeSet::new();
        let mut reference: std::collections::HashSet<u16> = Default::default();
        for (op, blade) in ops {
            match op {
                0 => {
                    set.insert(blade);
                    reference.insert(blade);
                }
                1 => {
                    set.remove(blade);
                    reference.remove(&blade);
                }
                _ => {
                    prop_assert_eq!(set.contains(blade), reference.contains(&blade));
                }
            }
            prop_assert_eq!(set.len() as usize, reference.len());
            let listed: std::collections::HashSet<u16> = set.iter().collect();
            prop_assert_eq!(&listed, &reference);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end functional property: the rack's shared memory behaves
    /// like one flat byte array no matter which blades touch it.
    #[test]
    fn cluster_is_a_coherent_flat_byte_array(
        ops in prop::collection::vec((0u64..(1 << 14), 0u16..2, prop::bool::ANY, 0u8..=255), 1..80)
    ) {
        let mut rack = MindCluster::new(MindConfig::small());
        let pid = rack.exec().unwrap();
        let base = rack.mmap(pid, 1 << 14).unwrap();
        let mut reference = vec![0u8; 1 << 14];
        let mut t = SimTime::ZERO;
        for (offset, blade, is_write, val) in ops {
            t += SimTime::from_micros(100);
            if is_write {
                rack.write_bytes(t, blade, pid, base + offset, &[val]).unwrap();
                reference[offset as usize] = val;
            } else {
                let got = rack.read_bytes(t, blade, pid, base + offset, 1).unwrap();
                prop_assert_eq!(got[0], reference[offset as usize]);
            }
        }
    }

    /// Coherence single-writer invariant under random multi-blade traffic.
    #[test]
    fn single_writer_or_many_readers(seed in 0u64..40) {
        let mut cfg = MindConfig::small();
        cfg.n_compute = 3;
        let mut rack = MindCluster::new(cfg);
        let pid = rack.exec().unwrap();
        let base = rack.mmap(pid, 1 << 15).unwrap();
        let mut rng = mind_sim::SimRng::new(seed);
        for i in 0..300u64 {
            let blade = rng.gen_below(3) as u16;
            let page = base + rng.gen_below(8) * 4096;
            let kind = if rng.gen_bool(0.5) { AccessKind::Write } else { AccessKind::Read };
            rack.access_as(SimTime::from_micros(i * 50), blade, pid, page, kind).unwrap();
            for p in (0..8).map(|k| base + k * 4096) {
                let writers = (0..3)
                    .filter(|&b| rack.engine().cache(b).is_writable(p))
                    .count();
                let holders = (0..3)
                    .filter(|&b| rack.engine().cache(b).contains(p))
                    .count();
                prop_assert!(writers <= 1, "at most one writer");
                prop_assert!(writers == 0 || holders == 1, "writer excludes readers");
            }
        }
    }
}
