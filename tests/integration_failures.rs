//! Failure handling end-to-end (paper §4.4): packet loss with
//! retransmission, blade failure driving the reset protocol, and
//! switch failover with control-plane reconstruction.

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::coherence::AccessError;
use mind_core::system::AccessKind;
use mind_sim::SimTime;

fn ms(n: u64) -> SimTime {
    SimTime::from_millis(n)
}

#[test]
fn packet_loss_retransmits_and_completes() {
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 18).unwrap();
    c.inject_loss(0.1, 777);
    // Plenty of cross-blade write traffic: invalidation rounds lose
    // packets and retransmit, but data stays correct throughout.
    for i in 0..100u64 {
        let blade = (i % 2) as u16;
        c.write_bytes(ms(1 + i * 2), blade, pid, base + (i % 8) * 4096, &[i as u8])
            .unwrap();
        let got = c
            .read_bytes(ms(2 + i * 2), 1 - blade, pid, base + (i % 8) * 4096, 1)
            .unwrap();
        assert_eq!(got, [i as u8]);
    }
    let m = c.metrics_snapshot();
    assert!(
        m.get("retransmissions") > 0,
        "loss at 10% must force retransmissions"
    );
    // A reset needs max_retries+1 consecutive failures (~0.1% per round at
    // this rate); data stayed correct above either way.
    assert!(
        m.get("resets") <= 2,
        "resets stay rare: {}",
        m.get("resets")
    );
}

#[test]
fn failed_blade_triggers_reset_and_releases_region() {
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 16).unwrap();
    // Blade 1 owns the page dirty, then dies silently.
    c.access_as(ms(1), 1, pid, base, AccessKind::Write).unwrap();
    c.fail_blade(1);
    // Blade 0's access needs blade 1 invalidated; ACKs never come, the
    // reset protocol fires, and the access still completes (no deadlock).
    let out = c.access_as(ms(2), 0, pid, base, AccessKind::Write).unwrap();
    assert!(out.remote);
    let m = c.metrics_snapshot();
    assert!(m.get("resets") >= 1, "reset protocol fired");
    assert!(m.get("retransmissions") >= 1, "retries preceded the reset");
    // The failed blade rejects new work.
    assert_eq!(
        c.access_as(ms(3), 1, pid, base, AccessKind::Read)
            .unwrap_err(),
        AccessError::BladeFailed
    );
    // The survivor continues normally.
    assert!(c.access_as(ms(4), 0, pid, base, AccessKind::Read).is_ok());
}

#[test]
fn reset_latency_is_bounded_by_retry_budget() {
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 16).unwrap();
    c.access_as(ms(1), 1, pid, base, AccessKind::Write).unwrap();
    c.fail_blade(1);
    let out = c.access_as(ms(2), 0, pid, base, AccessKind::Write).unwrap();
    // (max_retries + 1) x ack_timeout plus protocol time.
    let cfg = c.config().coherence;
    let bound = cfg.ack_timeout * (cfg.max_retries as u64 + 2);
    assert!(
        out.latency.total() < bound + SimTime::from_micros(50),
        "reset bounded: {} vs {}",
        out.latency.total(),
        bound
    );
}

#[test]
fn switch_failover_preserves_data_and_permissions() {
    let mut c = MindCluster::new(MindConfig::small());
    let p1 = c.exec().unwrap();
    let p2 = c.exec().unwrap();
    let v1 = c.mmap(p1, 1 << 16).unwrap();
    c.write_bytes(ms(1), 0, p1, v1, b"survives failover")
        .unwrap();

    let report = c.switch_failover(ms(2));
    assert!(report.rules_replayed >= 1);
    assert!(report.pages_flushed >= 1, "dirty data flushed before drop");

    // Data survives (flushed to memory blades), permissions survive
    // (replayed from the control-plane log), isolation survives.
    let got = c.read_bytes(ms(3), 1, p1, v1, 17).unwrap();
    assert_eq!(&got, b"survives failover");
    assert!(c.access_as(ms(4), 0, p2, v1, AccessKind::Read).is_err());
}

#[test]
fn failover_mid_write_traffic_stays_coherent() {
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 18).unwrap();
    for i in 0..16u64 {
        c.write_bytes(ms(1 + i), (i % 2) as u16, pid, base + i * 4096, &[i as u8])
            .unwrap();
    }
    c.switch_failover(ms(40));
    for i in 0..16u64 {
        let got = c
            .read_bytes(ms(50 + i), ((i + 1) % 2) as u16, pid, base + i * 4096, 1)
            .unwrap();
        assert_eq!(got, [i as u8], "page {i} after failover");
    }
}

#[test]
fn loss_free_runs_have_no_reliability_activity() {
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 16).unwrap();
    for i in 0..50u64 {
        c.write_bytes(ms(1 + i), (i % 2) as u16, pid, base, &[i as u8])
            .unwrap();
    }
    let m = c.metrics_snapshot();
    assert_eq!(m.get("retransmissions"), 0);
    assert_eq!(m.get("resets"), 0);
}
