//! Cross-crate coherence litmus tests: the shared-memory semantics MIND
//! promises (§4.3) hold end-to-end through switch tables, blade caches,
//! and the fabric.

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::directory::MsiState;
use mind_core::system::AccessKind;
use mind_sim::SimTime;

fn rack() -> (MindCluster, u64, u64) {
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 20).unwrap();
    (c, pid, base)
}

fn ms(n: u64) -> SimTime {
    SimTime::from_millis(n)
}

#[test]
fn message_passing_litmus() {
    // Blade 0: data = 42; flag = 1. Blade 1: sees flag == 1 => must see
    // data == 42 (TSO forbids the stale-data outcome).
    let (mut c, pid, base) = rack();
    let data = base;
    let flag = base + 4096;
    c.write_bytes(ms(1), 0, pid, data, &[42]).unwrap();
    c.write_bytes(ms(2), 0, pid, flag, &[1]).unwrap();
    let f = c.read_bytes(ms(3), 1, pid, flag, 1).unwrap();
    assert_eq!(f, [1]);
    let d = c.read_bytes(ms(4), 1, pid, data, 1).unwrap();
    assert_eq!(d, [42], "TSO: flag visible implies data visible");
}

#[test]
fn write_ping_pong_preserves_last_value() {
    let (mut c, pid, base) = rack();
    for round in 0u8..20 {
        let blade = (round % 2) as u16;
        c.write_bytes(ms(1 + round as u64 * 2), blade, pid, base, &[round])
            .unwrap();
        let got = c
            .read_bytes(ms(2 + round as u64 * 2), 1 - blade, pid, base, 1)
            .unwrap();
        assert_eq!(got, [round], "round {round}");
    }
}

#[test]
fn directory_tracks_sharers_and_owner() {
    let (mut c, pid, base) = rack();
    // Both blades read: region Shared with both sharers.
    c.access_as(ms(1), 0, pid, base, AccessKind::Read).unwrap();
    c.access_as(ms(2), 1, pid, base, AccessKind::Read).unwrap();
    let (rbase, _) = c.engine().directory().region_of(base).unwrap();
    let e = c.engine().directory().entry(rbase).unwrap();
    assert_eq!(e.state, MsiState::Shared);
    assert!(e.sharers.contains(0) && e.sharers.contains(1));

    // Blade 1 writes: region Modified, sole owner 1, blade 0 invalidated.
    c.access_as(ms(3), 1, pid, base, AccessKind::Write).unwrap();
    let e = c.engine().directory().entry(rbase).unwrap();
    assert_eq!(e.state, MsiState::Modified);
    assert_eq!(e.owner(), Some(1));
    assert!(!c.engine().cache(0).contains(base), "blade 0 invalidated");
}

#[test]
fn single_writer_invariant_under_random_traffic() {
    let (mut c, pid, base) = rack();
    let mut rng = mind_sim::SimRng::new(99);
    for i in 0..2_000u64 {
        let blade = rng.gen_below(2) as u16;
        let page = base + rng.gen_below(64) * 4096;
        let kind = if rng.gen_bool(0.5) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        c.access_as(SimTime::from_micros(i * 40), blade, pid, page, kind)
            .unwrap();
        // Invariant: a page writable on one blade is not cached anywhere
        // else.
        for p in (0..64).map(|k| base + k * 4096) {
            let w0 = c.engine().cache(0).is_writable(p);
            let w1 = c.engine().cache(1).is_writable(p);
            assert!(
                !(w0 && c.engine().cache(1).contains(p) || w1 && c.engine().cache(0).contains(p)),
                "page {p:#x} writable on one blade while cached on the other"
            );
        }
    }
}

#[test]
fn downgrade_keeps_readonly_copy_at_old_owner() {
    let (mut c, pid, base) = rack();
    c.write_bytes(ms(1), 0, pid, base, b"owned").unwrap();
    assert!(c.engine().cache(0).is_writable(base));
    // Blade 1 reads: M->S. Blade 0 keeps a read-only copy.
    c.access_as(ms(2), 1, pid, base, AccessKind::Read).unwrap();
    assert!(c.engine().cache(0).contains(base));
    assert!(!c.engine().cache(0).is_writable(base));
    // Blade 0's next read is a local hit (no fault).
    let out = c.access_as(ms(3), 0, pid, base, AccessKind::Read).unwrap();
    assert!(!out.remote);
}

#[test]
fn false_invalidations_accounted_within_region() {
    let (mut c, pid, base) = rack();
    // Dirty two pages of the same initial 16 KB region on blade 0.
    c.access_as(ms(1), 0, pid, base, AccessKind::Write).unwrap();
    c.access_as(ms(1), 0, pid, base + 4096, AccessKind::Write)
        .unwrap();
    // Blade 1 writes the first page: region invalidation flushes both dirty
    // pages; the second is a false invalidation (§4.3.1).
    let out = c.access_as(ms(2), 1, pid, base, AccessKind::Write).unwrap();
    assert_eq!(out.flushed_pages, 2);
    assert_eq!(out.false_invalidations, 1);
}

#[test]
fn eviction_roundtrips_data_through_memory_blade() {
    // Cache of 8 pages; write 32 distinct pages, then read them all back.
    let mut cfg = MindConfig::small();
    cfg.cache_pages = 8;
    let mut c = MindCluster::new(cfg);
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 20).unwrap();
    for i in 0..32u64 {
        c.write_bytes(ms(1 + i), 0, pid, base + i * 4096, &[i as u8 ^ 0x5A])
            .unwrap();
    }
    for i in 0..32u64 {
        let got = c
            .read_bytes(ms(100 + i), 0, pid, base + i * 4096, 1)
            .unwrap();
        assert_eq!(got, [i as u8 ^ 0x5A], "page {i} survived eviction");
    }
    assert!(c.metrics_snapshot().get("evictions") >= 24);
}

#[test]
fn multicast_prunes_non_sharers() {
    let mut cfg = MindConfig::small();
    cfg.n_compute = 4;
    let mut c = MindCluster::new(cfg);
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 16).unwrap();
    // Only blades 0 and 1 share; blade 2 writes -> invalidations must not
    // reach blade 3 (egress pruning, 4.3.2).
    c.access_as(ms(1), 0, pid, base, AccessKind::Read).unwrap();
    c.access_as(ms(2), 1, pid, base, AccessKind::Read).unwrap();
    let before = c.metrics_snapshot().get("multicast_pruned");
    c.access_as(ms(3), 2, pid, base, AccessKind::Write).unwrap();
    let m = c.metrics_snapshot();
    assert_eq!(m.get("invalidation_requests"), 2, "only the two sharers");
    assert!(
        m.get("multicast_pruned") > before,
        "copies for non-sharers pruned in egress"
    );
}

#[test]
fn upgrades_skip_data_fetch() {
    let (mut c, pid, base) = rack();
    c.access_as(ms(1), 0, pid, base, AccessKind::Read).unwrap();
    let reads_before = c.metrics_snapshot().get("remote_accesses");
    let out = c.access_as(ms(2), 0, pid, base, AccessKind::Write).unwrap();
    assert!(out.remote, "upgrade consults the switch");
    // An S->M upgrade with no other sharers: no invalidations, and the
    // latency is below a data-carrying fetch (grant only).
    assert_eq!(out.invalidations, 0);
    assert!(out.latency.total() < SimTime::from_micros(9));
    assert_eq!(
        c.metrics_snapshot().get("remote_accesses"),
        reads_before + 1
    );
}

#[test]
fn pipeline_recirculates_per_transition() {
    let (mut c, pid, base) = rack();
    c.access_as(ms(1), 0, pid, base, AccessKind::Read).unwrap();
    c.access_as(ms(2), 1, pid, base, AccessKind::Write).unwrap();
    let m = c.metrics_snapshot();
    assert!(
        m.get("pipeline_recirculations") >= 2,
        "each directory transition recirculates once (Figure 4)"
    );
}

#[test]
fn latency_calibration_matches_paper_figure7() {
    let (mut c, pid, base) = rack();
    // Cold fetch ~= 9-10us (paper: 9.3-9.4).
    let out = c.access_as(ms(1), 0, pid, base, AccessKind::Read).unwrap();
    let us = out.latency.total().as_micros_f64();
    assert!((8.5..10.5).contains(&us), "I->S fetch {us:.1}us");
    // Modified-elsewhere read ~= 18-22us (paper: 18.0).
    c.access_as(ms(2), 1, pid, base, AccessKind::Write).unwrap();
    let out = c.access_as(ms(3), 0, pid, base, AccessKind::Read).unwrap();
    let us = out.latency.total().as_micros_f64();
    assert!((16.0..24.0).contains(&us), "M->S path {us:.1}us");
    // Local hit < 100ns.
    let out = c.access_as(ms(4), 0, pid, base, AccessKind::Read).unwrap();
    assert!(out.latency.total() <= SimTime::from_nanos(100));
}

#[test]
fn data_coherent_under_all_protocols() {
    use mind_core::stt::Protocol;
    for protocol in [Protocol::Msi, Protocol::Mesi, Protocol::Moesi] {
        let mut c = MindCluster::new(MindConfig::small().protocol(protocol));
        let pid = c.exec().unwrap();
        let base = c.mmap(pid, 1 << 18).unwrap();
        let mut rng = mind_sim::SimRng::new(31);
        let mut reference = std::collections::HashMap::new();
        for i in 0..600u64 {
            let addr = base + rng.gen_below(1 << 18);
            let blade = rng.gen_below(2) as u16;
            let t = SimTime::from_micros(i * 60);
            if rng.gen_bool(0.5) {
                let val = rng.gen_below(256) as u8;
                c.write_bytes(t, blade, pid, addr, &[val]).unwrap();
                reference.insert(addr, val);
            } else {
                let got = c.read_bytes(t, blade, pid, addr, 1).unwrap();
                let expect = reference.get(&addr).copied().unwrap_or(0);
                assert_eq!(got[0], expect, "{protocol:?} addr {addr:#x} op {i}");
            }
        }
    }
}

#[test]
fn mesi_first_write_after_sole_read_is_silent() {
    use mind_core::stt::Protocol;
    let mut c = MindCluster::new(MindConfig::small().protocol(Protocol::Mesi));
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 16).unwrap();
    // Sole read grants Exclusive (writable mapping)...
    let out = c.access_as(ms(1), 0, pid, base, AccessKind::Read).unwrap();
    assert!(out.remote);
    // ...so the first write is a pure cache hit — no fault, no switch trip.
    let out = c.access_as(ms(2), 0, pid, base, AccessKind::Write).unwrap();
    assert!(!out.remote, "silent E->M upgrade");
    assert_eq!(out.latency.total(), SimTime::from_nanos(80));
}

#[test]
fn moesi_downgrade_skips_writeback() {
    use mind_core::stt::Protocol;
    let mut c = MindCluster::new(MindConfig::small().protocol(Protocol::Moesi));
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 16).unwrap();
    c.write_bytes(ms(1), 0, pid, base, b"owned dirty").unwrap();
    // Blade 1 reads: M->O, no flush, data served cache-to-cache.
    let got = c.read_bytes(ms(2), 1, pid, base, 11).unwrap();
    assert_eq!(&got, b"owned dirty");
    assert_eq!(
        c.metrics_snapshot().get("flushed_pages"),
        0,
        "MOESI downgrade keeps the dirty copy at the owner"
    );
    // A later write collapses O: now the flush happens.
    c.write_bytes(ms(3), 1, pid, base, b"new owner!!").unwrap();
    assert!(c.metrics_snapshot().get("flushed_pages") >= 1);
    let got = c.read_bytes(ms(4), 0, pid, base, 11).unwrap();
    assert_eq!(&got, b"new owner!!");
}
