//! The op-batch datapath's core guarantee: for any batch size, pushing a
//! schedule through MIND's batched pipeline produces **byte-identical**
//! reports to the scalar per-op loop — same outcomes, same issue times,
//! same metrics, same BENCH JSON. Batching amortizes table walks; it must
//! never change what the simulation computes.
//!
//! `ScalarLoop` wraps the cluster so the trait's *default*
//! `execute_batch` (a loop over scalar `access`) runs instead of the
//! batched override; both sides then execute the exact same schedule.

use proptest::prelude::*;

use mind::core::cluster::{MindCluster, MindConfig};
use mind::core::engine::{ClusterEngine, ClusterStep};
use mind::core::system::{AccessKind, ConsistencyModel, MemOp, OpBatch, ScalarLoop};
use mind::harness::{report, Scenario, ScenarioResult, SystemSpec, WorkloadSpec};
use mind::service::{MemoryService, ServiceConfig};
use mind::sim::SimTime;
use mind::workloads::kvs::KvsConfig;
use mind::workloads::memcached::MemcachedConfig;
use mind::workloads::micro::MicroConfig;
use mind::workloads::runner::{self, Concurrency, RunConfig};
use mind::workloads::{run_group, run_sharded, ShardSpec};

const BATCH_SIZES: [u64; 3] = [1, 8, 64];

fn workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Micro(MicroConfig {
            n_threads: 4,
            shared_pages: 2_048,
            private_pages: 256,
            ..Default::default()
        }),
        WorkloadSpec::Kvs(KvsConfig {
            partition_pages: 128,
            ..KvsConfig::ycsb_a(4)
        }),
        WorkloadSpec::Memcached(MemcachedConfig {
            n_threads: 4,
            value_pages: 1_024,
            bucket_pages: 128,
            meta_pages: 32,
            ..MemcachedConfig::workload_a()
        }),
    ]
}

fn run_cfg(batch_ops: u64) -> RunConfig {
    RunConfig {
        ops_per_thread: 1_200,
        warmup_ops_per_thread: 300,
        threads_per_blade: 2,
        ..Default::default()
    }
    .with_batch_ops(batch_ops)
}

/// Renders one replay as BENCH JSON, through either pipeline, at the
/// given in-flight window depth.
fn replay_json_at(workload: &WorkloadSpec, batch_ops: u64, window: u32, scalar: bool) -> String {
    let regions = workload.regions();
    let system = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso);
    let mut wl = workload.build();
    let cfg = run_cfg(batch_ops).with_window(window);
    let report = if scalar {
        let mut sys = ScalarLoop(system.build());
        runner::run(&mut sys, wl.as_mut(), cfg)
    } else {
        let mut sys = system.build();
        runner::run(sys.as_mut(), wl.as_mut(), cfg)
    };
    let result = ScenarioResult {
        name: format!("equiv/b{batch_ops}"),
        output: mind::harness::ScenarioOutput::from_report(report),
    };
    report::suite_json("batch_equivalence", &[result]).render()
}

/// Renders one replay as BENCH JSON, through either pipeline.
fn replay_json(workload: &WorkloadSpec, batch_ops: u64, scalar: bool) -> String {
    replay_json_at(workload, batch_ops, 1, scalar)
}

#[test]
fn replay_batched_json_is_byte_identical_to_scalar_loop() {
    for workload in workloads() {
        for batch_ops in BATCH_SIZES {
            let batched = replay_json(&workload, batch_ops, false);
            let scalar = replay_json(&workload, batch_ops, true);
            assert!(
                batched.contains("\"metrics\""),
                "report carries full metrics"
            );
            assert_eq!(
                batched, scalar,
                "batched datapath diverged from the scalar loop at batch_ops \
                 {batch_ops} for {:?}",
                workload.build().name()
            );
        }
    }
}

/// Tracing is observation, never behaviour: pinning the trace mode off
/// renders byte-identical BENCH JSON to the default environment-resolved
/// config (the instrumentation's disabled path adds no sections and
/// changes no values), and with tracing *on* the batched datapath still
/// matches the scalar loop byte for byte — now including the windowed
/// `timeseries` section both sides must agree on.
#[test]
fn tracing_never_changes_replay_json() {
    use mind::obs::{TraceConfig, TraceMode};

    let workload = WorkloadSpec::Micro(MicroConfig {
        n_threads: 4,
        shared_pages: 2_048,
        private_pages: 256,
        ..Default::default()
    });
    let with_trace = |trace: TraceConfig, scalar: bool| -> String {
        let regions = workload.regions();
        let system = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso)
            .with_trace(trace);
        let mut wl = workload.build();
        let cfg = RunConfig {
            trace,
            ..run_cfg(8)
        };
        let report = if scalar {
            let mut sys = ScalarLoop(system.build());
            runner::run(&mut sys, wl.as_mut(), cfg)
        } else {
            let mut sys = system.build();
            runner::run(sys.as_mut(), wl.as_mut(), cfg)
        };
        let result = ScenarioResult {
            name: "equiv/traced".into(),
            output: mind::harness::ScenarioOutput::from_report(report),
        };
        report::suite_json("batch_equivalence", &[result]).render()
    };

    // Off is the default in this environment (no MIND_TRACE): pinning it
    // must be invisible.
    let pinned_off = with_trace(TraceConfig::with_mode(TraceMode::Off), false);
    let env_default = with_trace(TraceConfig::default(), false);
    assert_eq!(pinned_off, env_default, "disabled tracing must be inert");
    assert!(!pinned_off.contains("\"timeseries\""), "no telemetry when off");

    // On: batched and scalar must still agree — including the telemetry.
    let on = TraceConfig::with_mode(TraceMode::On);
    let batched = with_trace(on, false);
    let scalar = with_trace(on, true);
    assert!(batched.contains("\"timeseries\""), "telemetry present when on");
    assert_eq!(
        batched, scalar,
        "tracing-on batched datapath diverged from the scalar loop"
    );
}

/// The window=1 anchor of the issue/complete refactor: with the in-flight
/// window at its default serialized depth, the two-phase datapath renders
/// the exact BENCH JSON the pre-window (PR 4) pipeline rendered — for the
/// replay suite against the scalar reference loop, and for the service
/// suite against the per-op scalar dispatch.
#[test]
fn window_one_json_is_byte_identical_to_the_serialized_path() {
    for workload in workloads() {
        for batch_ops in [8u64, 64] {
            let windowed = replay_json_at(&workload, batch_ops, 1, false);
            let scalar = replay_json_at(&workload, batch_ops, 1, true);
            assert_eq!(
                windowed, scalar,
                "window=1 diverged from the serialized path at batch_ops \
                 {batch_ops} for {:?}",
                workload.build().name()
            );
        }
    }
    let cfg = ServiceConfig {
        duration: SimTime::from_millis(30),
        window: 1,
        ..Default::default()
    };
    let windowed = MemoryService::new(cfg).run();
    let serialized = MemoryService::new(ServiceConfig {
        batch_dispatch: false,
        ..cfg
    })
    .run();
    assert_eq!(
        report::service_json(&windowed).render(),
        report::service_json(&serialized).render(),
        "service window=1 diverged from the scalar dispatch"
    );
}

/// Deeper windows change timing, never the work: every op still executes
/// and overlap can only shorten the run (it hides fabric latency, it
/// cannot add any).
#[test]
fn overlapped_windows_preserve_work_and_never_slow_the_run() {
    let workload = WorkloadSpec::Micro(MicroConfig {
        n_threads: 4,
        shared_pages: 2_048,
        private_pages: 256,
        ..Default::default()
    });
    let parse = |json: &str, key: &str| -> u64 {
        let tag = format!("\"{key}\": ");
        let rest = &json[json.find(&tag).expect("key present") + tag.len()..];
        rest[..rest.find([',', '\n']).unwrap()].trim().parse().unwrap()
    };
    let serialized = replay_json_at(&workload, 64, 1, false);
    let base_runtime = parse(&serialized, "runtime_ns");
    let base_ops = parse(&serialized, "total_ops");
    assert_eq!(parse(&serialized, "overlapped"), 0, "window 1 hides nothing");
    for window in [4u32, 16] {
        let overlapped = replay_json_at(&workload, 64, window, false);
        assert_eq!(parse(&overlapped, "total_ops"), base_ops, "w{window}");
        assert!(
            parse(&overlapped, "runtime_ns") <= base_runtime,
            "w{window} slowed the run"
        );
        assert!(
            parse(&overlapped, "overlapped") > 0,
            "w{window} overlapped no fabric time"
        );
    }
}

/// The same guarantee through the harness engine: a scenario table mixing
/// batch sizes renders identical suite JSON whichever pipeline executes it.
#[test]
fn engine_table_json_is_pipeline_independent() {
    let build_table = |scalar: bool| -> Vec<Scenario> {
        BATCH_SIZES
            .iter()
            .map(|&batch_ops| {
                let workload = WorkloadSpec::Micro(MicroConfig {
                    n_threads: 2,
                    shared_pages: 512,
                    private_pages: 64,
                    ..Default::default()
                });
                let regions = workload.regions();
                let system = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso);
                let cfg = run_cfg(batch_ops);
                Scenario::custom(format!("equiv/micro/b{batch_ops}"), move || {
                    let mut wl = workload.build();
                    let report = if scalar {
                        let mut sys = ScalarLoop(system.build());
                        runner::run(&mut sys, wl.as_mut(), cfg)
                    } else {
                        let mut sys = system.build();
                        runner::run(sys.as_mut(), wl.as_mut(), cfg)
                    };
                    mind::harness::ScenarioOutput::from_report(report)
                })
            })
            .collect()
    };
    let batched = mind::harness::Engine::new(2).run(build_table(false));
    let scalar = mind::harness::Engine::new(2).run(build_table(true));
    assert_eq!(
        report::suite_json("equiv", &batched).render(),
        report::suite_json("equiv", &scalar).render()
    );
}

/// Service quanta: a full churn/QoS run with batched dispatch renders the
/// same service JSON as the per-op scalar dispatch.
#[test]
fn service_batched_dispatch_json_is_byte_identical() {
    let cfg = ServiceConfig {
        duration: SimTime::from_millis(30),
        ..Default::default()
    };
    let batched = MemoryService::new(cfg).run();
    let scalar = MemoryService::new(ServiceConfig {
        batch_dispatch: false,
        ..cfg
    })
    .run();
    assert!(batched.total_ops > 0, "the run served requests");
    assert_eq!(
        report::service_json(&batched).render(),
        report::service_json(&scalar).render()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The in-flight window's two invariants, checked from the batch's
    /// own completion records over random schedules — chained (trace
    /// replay) and fixed (dispatcher quanta, including tied preset
    /// times) alike: (a) no more than `window` operations are ever in
    /// flight at once, and (b) two operations that transitioned the same
    /// directory region never overlap in time.
    #[test]
    fn window_bounds_inflight_ops_and_serializes_same_region(
        seed in 0u64..10_000,
        window in 2u32..8,
        n_ops in 16usize..96,
        write_ratio in 0u32..10,
        chained in prop::bool::ANY,
        fixed_step_ns in 0u64..200,
    ) {
        let mut cluster = MindCluster::new(MindConfig::small());
        let pid = cluster.exec().unwrap();
        let base = cluster.mmap(pid, 256 << 12).unwrap();
        let mut rng = mind::sim::SimRng::new(seed);
        let mut batch = if chained {
            OpBatch::chained(SimTime::from_nanos(100))
        } else {
            OpBatch::fixed()
        }
        .with_window(window);
        for i in 0..n_ops {
            batch.push(MemOp {
                // Fixed quanta preset issue times (all tied when the
                // step is 0, the service dispatcher's shape).
                at: SimTime::from_nanos(i as u64 * fixed_step_ns),
                blade: rng.gen_below(2) as u16,
                pdid: None,
                vaddr: base + (rng.gen_below(256) << 12),
                kind: if rng.gen_below(10) < write_ratio as u64 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            });
        }
        cluster.run_batch(SimTime::ZERO, &mut batch);
        for i in 1..batch.len() {
            prop_assert!(
                batch.op(i).at >= batch.op(i - 1).at,
                "issue times regressed at op {i}"
            );
        }
        for i in 0..batch.len() {
            prop_assert!(batch.result(i).is_ok());
        }
        for i in 0..batch.len() {
            let issued = batch.op(i).at;
            // (a) When op i issued, fewer than `window` earlier ops were
            // still in flight (so op i fit in a slot). Chained issue
            // times are monotone, so "in flight" is exactly: issued no
            // later, completing strictly later.
            let in_flight = (0..i)
                .filter(|&j| batch.op(j).at <= issued && batch.completion(j) > issued)
                .count();
            prop_assert!(
                in_flight < window as usize,
                "op {i} issued with {in_flight} ops already in flight (window {window})"
            );
            // (b) Same-region transitions serialize: an earlier op that
            // held the same directory region must have completed before
            // this one issued.
            for j in 0..i {
                if batch.region(i).is_some() && batch.region(i) == batch.region(j) {
                    prop_assert!(
                        batch.completion(j) <= issued,
                        "ops {j} and {i} overlapped on region {:?}",
                        batch.region(i)
                    );
                }
            }
        }
    }

    /// The cluster engine's two cross-thread invariants, checked from the
    /// engine's own issue/completion records over random multi-source
    /// schedules driven exactly like the runner's event loop: (a) a
    /// blade's RNIC never holds more than `nic_depth` operations at once,
    /// and (b) two operations that transitioned the same directory region
    /// never overlap in time — cluster-wide, across sources, not merely
    /// within one thread's batch.
    #[test]
    fn cluster_engine_bounds_nics_and_serializes_regions_cluster_wide(
        seed in 0u64..10_000,
        window in 1u32..6,
        nic_depth in 1u32..4,
        sources in 2u32..5,
        ops_per_source in 8usize..32,
        write_ratio in 0u32..10,
        gap_ns in 50u64..500,
    ) {
        let mut cluster = MindCluster::new(MindConfig {
            nic_depth,
            ..MindConfig::small()
        });
        let pid = cluster.exec().unwrap();
        let base = cluster.mmap(pid, 256 << 12).unwrap();
        let mut rng = mind::sim::SimRng::new(seed);
        let schedules: Vec<Vec<MemOp>> = (0..sources)
            .map(|_| {
                (0..ops_per_source)
                    .map(|_| MemOp {
                        at: SimTime::ZERO,
                        blade: rng.gen_below(2) as u16,
                        pdid: None,
                        vaddr: base + (rng.gen_below(256) << 12),
                        kind: if rng.gen_below(10) < write_ratio as u64 {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                    })
                    .collect()
            })
            .collect();
        let gap = SimTime::from_nanos(gap_ns);
        let mut eng = ClusterEngine::new(window, nic_depth, sources);
        for src in 0..sources {
            eng.seed(SimTime::ZERO, src);
        }
        struct Flight {
            at: SimTime,
            done: SimTime,
            blade: u16,
            region: Option<(u64, u8)>,
        }
        let mut pos = vec![0usize; sources as usize];
        let mut issued: Vec<Flight> = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((now, src)) = eng.next_ready() {
            prop_assert!(now >= last, "virtual time regressed");
            last = now;
            let op = schedules[src as usize][pos[src as usize]];
            let ready0 = eng.ready0(src);
            match cluster.issue_clustered(&mut eng, now, ready0, &op) {
                ClusterStep::Gated { until, nic_stall } => {
                    prop_assert!(until > now, "gated release must advance time");
                    prop_assert!(
                        nic_stall <= until.saturating_sub(now),
                        "NIC stall exceeds the whole wait"
                    );
                    eng.defer(until, src);
                }
                ClusterStep::Issued { complete_at, region, .. } => {
                    // (a) When this op issued, its blade's RNIC had a free
                    // entry: fewer than `nic_depth` earlier ops from *any*
                    // source were still in flight there.
                    let on_nic = issued
                        .iter()
                        .filter(|f| f.blade == op.blade && f.at <= now && f.done > now)
                        .count();
                    prop_assert!(
                        on_nic < nic_depth as usize,
                        "op on blade {} issued with {on_nic} already on its \
                         NIC (depth {nic_depth})",
                        op.blade
                    );
                    // (b) Same-region directory transitions serialize
                    // cluster-wide: any earlier op that transitioned this
                    // region — from any source — completed before this
                    // one issued.
                    if region.is_some() {
                        for f in &issued {
                            if f.region == region {
                                prop_assert!(
                                    f.done <= now,
                                    "two transitions of region {region:?} \
                                     overlapped across sources"
                                );
                            }
                        }
                    }
                    issued.push(Flight {
                        at: now,
                        done: complete_at,
                        blade: op.blade,
                        region,
                    });
                    pos[src as usize] += 1;
                    if pos[src as usize] < schedules[src as usize].len() {
                        eng.seed(now + gap, src);
                    }
                }
            }
        }
        prop_assert_eq!(
            pos,
            vec![ops_per_source; sources as usize],
            "every source drained its schedule"
        );
    }

    /// At window 1, the overlapped invariants degenerate to full
    /// serialization: every op issues at or after its predecessor's
    /// completion and nothing is ever attributed to overlap.
    #[test]
    fn window_one_fully_serializes(seed in 0u64..10_000, n_ops in 8usize..48) {
        let mut cluster = MindCluster::new(MindConfig::small());
        let pid = cluster.exec().unwrap();
        let base = cluster.mmap(pid, 64 << 12).unwrap();
        let mut rng = mind::sim::SimRng::new(seed);
        let mut batch = OpBatch::chained(SimTime::from_nanos(100)).with_window(1);
        for _ in 0..n_ops {
            batch.push(MemOp {
                at: SimTime::ZERO,
                blade: rng.gen_below(2) as u16,
                pdid: None,
                vaddr: base + (rng.gen_below(64) << 12),
                kind: AccessKind::Read,
            });
        }
        cluster.run_batch(SimTime::ZERO, &mut batch);
        for i in 1..batch.len() {
            prop_assert!(batch.op(i).at >= batch.completion(i - 1));
            prop_assert_eq!(batch.outcome(i).latency.overlapped, SimTime::ZERO);
        }
    }
}

/// Renders one replay as BENCH JSON through the batched pipeline under
/// the given cross-thread concurrency discipline.
fn replay_json_concurrent(
    workload: &WorkloadSpec,
    batch_ops: u64,
    window: u32,
    concurrency: Concurrency,
) -> String {
    let regions = workload.regions();
    let system = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso);
    let mut wl = workload.build();
    let cfg = run_cfg(batch_ops)
        .with_window(window)
        .with_concurrency(concurrency);
    let mut sys = system.build();
    let report = runner::run(sys.as_mut(), wl.as_mut(), cfg);
    let result = ScenarioResult {
        name: format!("equiv/cluster/b{batch_ops}"),
        output: mind::harness::ScenarioOutput::from_report(report),
    };
    report::suite_json("batch_equivalence", &[result]).render()
}

/// The cluster engine's determinism anchor: at window 1 cluster mode
/// keeps the turnwise discipline, so a serialized cluster-mode replay
/// renders the exact BENCH JSON of the turnwise reference — for every
/// workload and batch size.
#[test]
fn cluster_window_one_json_is_byte_identical_to_turnwise() {
    for workload in workloads() {
        for batch_ops in [8u64, 64] {
            let turnwise =
                replay_json_concurrent(&workload, batch_ops, 1, Concurrency::Turnwise);
            let cluster = replay_json_concurrent(&workload, batch_ops, 1, Concurrency::Cluster);
            assert_eq!(
                cluster, turnwise,
                "serialized cluster mode diverged from the turnwise reference \
                 at batch_ops {batch_ops} for {:?}",
                workload.build().name()
            );
        }
    }
}

/// The batching guarantee composes with sharding: at every batch size,
/// the sharded windowed replay merges to the same report as the fused
/// serialized reference. Batch size regroups each thread's schedule —
/// identically on every shard — so the conservative windows still line up.
#[test]
fn sharded_replay_matches_fused_at_every_batch_size() {
    let factory = |p: u16| {
        WorkloadSpec::Micro(MicroConfig {
            n_threads: 2,
            shared_pages: 256,
            private_pages: 64,
            seed: 31 + p as u64,
            ..Default::default()
        })
        .build()
    };
    for batch_ops in BATCH_SIZES {
        let spec = ShardSpec {
            name: format!("equiv/sharded/b{batch_ops}"),
            base: MindConfig {
                n_compute: 2,
                n_memory: 2,
                cache_pages: 1_024,
                blade_span: 1 << 26,
                memory_blade_bytes: 1 << 26,
                dir_capacity: 8_192,
                rule_capacity: 4_096,
                ..MindConfig::default()
            },
            partitions: 2,
            run: RunConfig {
                ops_per_thread: 300,
                warmup_ops_per_thread: 60,
                threads_per_blade: 2,
                ..Default::default()
            }
            .with_batch_ops(batch_ops),
            horizon: SimTime::from_micros(50),
            domain_per_thread: false,
        };
        let fused = runner_json(run_group(&spec, &factory).expect("confined scenario"));
        let sharded = runner_json(run_sharded(&spec, 2, &factory).expect("confined scenario"));
        assert_eq!(
            sharded, fused,
            "sharded replay diverged from the fused reference at batch_ops {batch_ops}"
        );
    }
}

/// Renders a group/merged report as suite JSON for byte comparison.
fn runner_json(report: mind::workloads::RunReport) -> String {
    let result = ScenarioResult {
        name: report.name.clone(),
        output: mind::harness::ScenarioOutput::from_report(report),
    };
    report::suite_json("batch_equivalence", &[result]).render()
}

/// Baselines keep working unmodified through the default batched path:
/// batch size must not change a GAM/FastSwap replay either (they never
/// override `execute_batch`, so every size runs the same scalar loop —
/// sizes only regroup the per-thread schedule).
#[test]
fn baselines_accept_batched_schedules() {
    let workload = WorkloadSpec::Micro(MicroConfig {
        n_threads: 2,
        shared_pages: 256,
        private_pages: 64,
        ..Default::default()
    });
    let regions = workload.regions();
    for batch_ops in BATCH_SIZES {
        for system in [
            SystemSpec::gam_scaled(&regions, 2, 1),
            SystemSpec::fastswap_scaled(&regions),
        ] {
            let mut sys = system.build();
            let mut wl = workload.build();
            let cfg = RunConfig {
                threads_per_blade: if matches!(system, SystemSpec::FastSwap(_)) {
                    2
                } else {
                    1
                },
                ..run_cfg(batch_ops)
            };
            let report = runner::run(sys.as_mut(), wl.as_mut(), cfg);
            assert_eq!(report.total_ops, 2 * cfg.ops_per_thread);
            assert!(report.runtime > SimTime::ZERO);
        }
    }
}
