//! The op-batch datapath's core guarantee: for any batch size, pushing a
//! schedule through MIND's batched pipeline produces **byte-identical**
//! reports to the scalar per-op loop — same outcomes, same issue times,
//! same metrics, same BENCH JSON. Batching amortizes table walks; it must
//! never change what the simulation computes.
//!
//! `ScalarLoop` wraps the cluster so the trait's *default*
//! `execute_batch` (a loop over scalar `access`) runs instead of the
//! batched override; both sides then execute the exact same schedule.

use mind::core::system::{ConsistencyModel, ScalarLoop};
use mind::harness::{report, Scenario, ScenarioResult, SystemSpec, WorkloadSpec};
use mind::service::{MemoryService, ServiceConfig};
use mind::sim::SimTime;
use mind::workloads::kvs::KvsConfig;
use mind::workloads::memcached::MemcachedConfig;
use mind::workloads::micro::MicroConfig;
use mind::workloads::runner::{self, RunConfig};

const BATCH_SIZES: [u64; 3] = [1, 8, 64];

fn workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Micro(MicroConfig {
            n_threads: 4,
            shared_pages: 2_048,
            private_pages: 256,
            ..Default::default()
        }),
        WorkloadSpec::Kvs(KvsConfig {
            partition_pages: 128,
            ..KvsConfig::ycsb_a(4)
        }),
        WorkloadSpec::Memcached(MemcachedConfig {
            n_threads: 4,
            value_pages: 1_024,
            bucket_pages: 128,
            meta_pages: 32,
            ..MemcachedConfig::workload_a()
        }),
    ]
}

fn run_cfg(batch_ops: u64) -> RunConfig {
    RunConfig {
        ops_per_thread: 1_200,
        warmup_ops_per_thread: 300,
        threads_per_blade: 2,
        ..Default::default()
    }
    .with_batch_ops(batch_ops)
}

/// Renders one replay as BENCH JSON, through either pipeline.
fn replay_json(workload: &WorkloadSpec, batch_ops: u64, scalar: bool) -> String {
    let regions = workload.regions();
    let system = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso);
    let mut wl = workload.build();
    let report = if scalar {
        let mut sys = ScalarLoop(system.build());
        runner::run(&mut sys, wl.as_mut(), run_cfg(batch_ops))
    } else {
        let mut sys = system.build();
        runner::run(sys.as_mut(), wl.as_mut(), run_cfg(batch_ops))
    };
    let result = ScenarioResult {
        name: format!("equiv/b{batch_ops}"),
        output: mind::harness::ScenarioOutput::from_report(report),
    };
    report::suite_json("batch_equivalence", &[result]).render()
}

#[test]
fn replay_batched_json_is_byte_identical_to_scalar_loop() {
    for workload in workloads() {
        for batch_ops in BATCH_SIZES {
            let batched = replay_json(&workload, batch_ops, false);
            let scalar = replay_json(&workload, batch_ops, true);
            assert!(
                batched.contains("\"metrics\""),
                "report carries full metrics"
            );
            assert_eq!(
                batched, scalar,
                "batched datapath diverged from the scalar loop at batch_ops \
                 {batch_ops} for {:?}",
                workload.build().name()
            );
        }
    }
}

/// The same guarantee through the harness engine: a scenario table mixing
/// batch sizes renders identical suite JSON whichever pipeline executes it.
#[test]
fn engine_table_json_is_pipeline_independent() {
    let build_table = |scalar: bool| -> Vec<Scenario> {
        BATCH_SIZES
            .iter()
            .map(|&batch_ops| {
                let workload = WorkloadSpec::Micro(MicroConfig {
                    n_threads: 2,
                    shared_pages: 512,
                    private_pages: 64,
                    ..Default::default()
                });
                let regions = workload.regions();
                let system = SystemSpec::mind_scaled(&regions, 2, ConsistencyModel::Tso);
                let cfg = run_cfg(batch_ops);
                Scenario::custom(format!("equiv/micro/b{batch_ops}"), move || {
                    let mut wl = workload.build();
                    let report = if scalar {
                        let mut sys = ScalarLoop(system.build());
                        runner::run(&mut sys, wl.as_mut(), cfg)
                    } else {
                        let mut sys = system.build();
                        runner::run(sys.as_mut(), wl.as_mut(), cfg)
                    };
                    mind::harness::ScenarioOutput::from_report(report)
                })
            })
            .collect()
    };
    let batched = mind::harness::Engine::new(2).run(build_table(false));
    let scalar = mind::harness::Engine::new(2).run(build_table(true));
    assert_eq!(
        report::suite_json("equiv", &batched).render(),
        report::suite_json("equiv", &scalar).render()
    );
}

/// Service quanta: a full churn/QoS run with batched dispatch renders the
/// same service JSON as the per-op scalar dispatch.
#[test]
fn service_batched_dispatch_json_is_byte_identical() {
    let cfg = ServiceConfig {
        duration: SimTime::from_millis(30),
        ..Default::default()
    };
    let batched = MemoryService::new(cfg).run();
    let scalar = MemoryService::new(ServiceConfig {
        batch_dispatch: false,
        ..cfg
    })
    .run();
    assert!(batched.total_ops > 0, "the run served requests");
    assert_eq!(
        report::service_json(&batched).render(),
        report::service_json(&scalar).render()
    );
}

/// Baselines keep working unmodified through the default batched path:
/// batch size must not change a GAM/FastSwap replay either (they never
/// override `execute_batch`, so every size runs the same scalar loop —
/// sizes only regroup the per-thread schedule).
#[test]
fn baselines_accept_batched_schedules() {
    let workload = WorkloadSpec::Micro(MicroConfig {
        n_threads: 2,
        shared_pages: 256,
        private_pages: 64,
        ..Default::default()
    });
    let regions = workload.regions();
    for batch_ops in BATCH_SIZES {
        for system in [
            SystemSpec::gam_scaled(&regions, 2, 1),
            SystemSpec::fastswap_scaled(&regions),
        ] {
            let mut sys = system.build();
            let mut wl = workload.build();
            let cfg = RunConfig {
                threads_per_blade: if matches!(system, SystemSpec::FastSwap(_)) {
                    2
                } else {
                    1
                },
                ..run_cfg(batch_ops)
            };
            let report = runner::run(sys.as_mut(), wl.as_mut(), cfg);
            assert_eq!(report.total_ops, 2 * cfg.ops_per_thread);
            assert!(report.runtime > SimTime::ZERO);
        }
    }
}
