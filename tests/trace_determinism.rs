//! The tracing tentpole's contract: with tracing **on**, the rendered
//! Chrome trace JSON and the windowed `timeseries` telemetry are
//! byte-identical across every `(shard count × OS-thread count)`
//! execution cell — traces are replay artifacts, not logs. With tracing
//! **off**, reports carry no trace or timeseries sections at all and the
//! BENCH JSON is byte-identical to a run that predates the
//! instrumentation (the disabled path is a branch, never a behavioural
//! change).
//!
//! The determinism argument mirrors the shard-equivalence contract:
//! every traced event is built from simulated quantities only, so the
//! event *multiset* is grouping-invariant, and `TraceData::canonicalize`
//! (a total-order sort over the full event tuple) erases recording
//! order. These tests pin that argument end to end, through the real
//! shard driver and the real renderer.

use proptest::prelude::*;

use mind::core::cluster::MindConfig;
use mind::harness::{report, ScenarioOutput, ScenarioResult, WorkloadSpec};
use mind::obs::{EventKind, TraceConfig, TraceData, TraceEvent, TraceMode};
use mind::service::{MemoryService, ServiceConfig};
use mind::sim::{SimRng, SimTime};
use mind::workloads::micro::MicroConfig;
use mind::workloads::runner::{Concurrency, RunConfig, RunReport};
use mind::workloads::{run_group, run_sharded_threads, ShardSpec};

/// A four-partition rack that divides evenly into 1, 2, or 4 shards,
/// with tracing pinned on in both the rack config (drives the cluster's
/// event sink) and the run config (drives the windowed telemetry).
fn traced_spec(name: &str) -> ShardSpec {
    ShardSpec {
        name: name.to_string(),
        base: MindConfig {
            n_compute: 4,
            n_memory: 4,
            cache_pages: 1_024,
            blade_span: 1 << 26,
            memory_blade_bytes: 1 << 26,
            dir_capacity: 16_384,
            rule_capacity: 8_192,
            trace: TraceConfig::with_mode(TraceMode::On),
            ..MindConfig::default()
        },
        partitions: 4,
        run: RunConfig {
            ops_per_thread: 240,
            warmup_ops_per_thread: 40,
            threads_per_blade: 4,
            trace: TraceConfig::with_mode(TraceMode::On),
            ..Default::default()
        }
        .with_batch_ops(8),
        horizon: SimTime::from_micros(50),
        domain_per_thread: false,
    }
}

fn micro_factory(p: u16) -> Box<dyn mind::workloads::Workload> {
    WorkloadSpec::Micro(MicroConfig {
        n_threads: 4,
        shared_pages: 512,
        private_pages: 64,
        seed: 7 + p as u64,
        ..Default::default()
    })
    .build()
}

/// Renders a merged report's trace exactly as the bench suite would
/// (`TRACE_<suite>.json` content).
fn trace_json(report: RunReport) -> String {
    let result = ScenarioResult {
        name: report.name.clone(),
        output: ScenarioOutput::from_report(report),
    };
    report::trace_json("trace_determinism", &[result])
}

/// Renders a merged report's suite JSON (carries the `timeseries`
/// section when tracing was on).
fn bench_json(report: RunReport) -> String {
    let result = ScenarioResult {
        name: report.name.clone(),
        output: ScenarioOutput::from_report(report),
    };
    report::suite_json("trace_determinism", &[result]).render()
}

#[test]
fn trace_json_is_byte_identical_across_every_shard_thread_cell() {
    let spec = traced_spec("trace/micro");
    let factory: &mind::workloads::shard::PartitionFactory = &micro_factory;
    let fused = run_group(&spec, factory).expect("confined scenario");
    let trace = fused.trace.as_ref().expect("tracing pinned on");
    assert!(!trace.events.is_empty(), "the run recorded events");
    assert_eq!(trace.dropped, 0, "capacity valve untouched");
    let reference_trace = trace_json(fused);
    for shards in [1u16, 2, 4] {
        for threads in [1usize, 2, 4] {
            let merged = run_sharded_threads(&spec, shards, threads, factory)
                .expect("confined scenario");
            assert_eq!(
                merged.trace.as_ref().expect("tracing pinned on").dropped,
                0,
                "shards = {shards}, threads = {threads} dropped events"
            );
            assert_eq!(
                trace_json(merged),
                reference_trace,
                "trace JSON diverged from the fused reference at \
                 shards = {shards}, threads = {threads}"
            );
        }
    }
}

#[test]
fn timeseries_is_byte_identical_across_every_shard_thread_cell() {
    let spec = traced_spec("trace/timeseries");
    let factory: &mind::workloads::shard::PartitionFactory = &micro_factory;
    let fused = run_group(&spec, factory).expect("confined scenario");
    let series = fused.timeseries.as_ref().expect("tracing pinned on");
    assert!(series.total_ops() > 0, "telemetry recorded the run");
    let reference = bench_json(fused);
    assert!(
        reference.contains("\"timeseries\""),
        "suite JSON carries the timeseries section"
    );
    for shards in [1u16, 2, 4] {
        for threads in [1usize, 2, 4] {
            let merged = run_sharded_threads(&spec, shards, threads, factory)
                .expect("confined scenario");
            assert_eq!(
                bench_json(merged),
                reference,
                "timeseries diverged from the fused reference at \
                 shards = {shards}, threads = {threads}"
            );
        }
    }
}

/// The same cell-invariance contract through the cluster-wide
/// event-driven engine: with `Concurrency::Cluster`, a deep window, and
/// bounded NICs, every `(shards × threads)` cell still renders the fused
/// run's exact trace and timeseries bytes — and the trace now carries
/// `nic_stall` events with the matching `nic_stall_ns` telemetry lane,
/// so NIC pressure is attributable without breaking determinism.
#[test]
fn cluster_trace_and_timeseries_are_byte_identical_across_cells() {
    let mut spec = traced_spec("trace/cluster");
    spec.base.nic_depth = 2;
    spec.run = spec
        .run
        .with_window(8)
        .with_concurrency(Concurrency::Cluster);
    let factory: &mind::workloads::shard::PartitionFactory = &micro_factory;
    let fused = run_group(&spec, factory).expect("confined scenario");
    let trace = fused.trace.as_ref().expect("tracing pinned on");
    assert!(
        trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::NicStall)),
        "bounded NICs under a traced cluster run record nic_stall events"
    );
    assert_eq!(trace.dropped, 0, "capacity valve untouched");
    let reference_trace = trace_json(fused.clone());
    let reference_bench = bench_json(fused);
    assert!(
        reference_trace.contains("\"name\":\"nic_stall\""),
        "trace JSON names the NIC lane"
    );
    assert!(
        reference_bench.contains("\"nic_stall_ns\""),
        "timeseries carries the NIC stall lane"
    );
    for shards in [1u16, 2, 4] {
        for threads in [1usize, 2, 4] {
            let merged = run_sharded_threads(&spec, shards, threads, factory)
                .expect("confined scenario");
            assert_eq!(
                trace_json(merged.clone()),
                reference_trace,
                "cluster trace diverged from the fused reference at \
                 shards = {shards}, threads = {threads}"
            );
            assert_eq!(
                bench_json(merged),
                reference_bench,
                "cluster timeseries diverged from the fused reference at \
                 shards = {shards}, threads = {threads}"
            );
        }
    }
}

#[test]
fn tracing_off_reports_carry_no_observability_sections() {
    let mut spec = traced_spec("trace/off");
    spec.base.trace = TraceConfig::with_mode(TraceMode::Off);
    spec.run.trace = TraceConfig::with_mode(TraceMode::Off);
    let factory: &mind::workloads::shard::PartitionFactory = &micro_factory;
    let report = run_group(&spec, factory).expect("confined scenario");
    assert!(report.trace.is_none(), "no trace when off");
    assert!(report.timeseries.is_none(), "no telemetry when off");
    let json = bench_json(report);
    assert!(!json.contains("\"timeseries\""), "no timeseries key: {json}");
}

#[test]
fn service_trace_is_deterministic_across_runs_and_dispatch_paths() {
    let cfg = ServiceConfig {
        duration: SimTime::from_millis(20),
        rack: MindConfig {
            trace: TraceConfig::with_mode(TraceMode::On),
            ..ServiceConfig::default().rack
        },
        ..Default::default()
    };
    let render = |r: mind::service::ServiceReport| -> (String, String) {
        let result = ScenarioResult {
            name: "svc".into(),
            output: ScenarioOutput::from_service(r),
        };
        (
            report::trace_json("svc", std::slice::from_ref(&result)),
            report::suite_json("svc", std::slice::from_ref(&result)).render(),
        )
    };
    let a = MemoryService::new(cfg).run();
    assert!(a.trace.is_some(), "service traces through rack.trace");
    assert!(
        a.timeseries.is_some(),
        "service carries per-class telemetry"
    );
    let (trace_a, suite_a) = render(a);
    assert!(trace_a.contains("\"name\":\"dispatch\""), "{trace_a}");
    assert!(trace_a.contains("\"name\":\"tenant_admit\""), "{trace_a}");
    assert!(suite_a.contains("\"timeseries\""));
    let (trace_b, suite_b) = render(MemoryService::new(cfg).run());
    assert_eq!(trace_a, trace_b, "service trace must replay identically");
    assert_eq!(suite_a, suite_b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalization is grouping-invariant and virtual-time monotone:
    /// however a random event multiset is split into per-shard buffers
    /// (recording order included), merging and canonicalizing yields one
    /// sequence, sorted by timestamp — so per lane (and per shard) the
    /// canonical order is monotone in virtual time.
    #[test]
    fn canonical_trace_order_is_monotone_and_split_invariant(
        seed in 0u64..10_000,
        n_events in 1usize..128,
        split_at in 0usize..128,
    ) {
        let mut rng = SimRng::new(seed);
        let kinds = [
            EventKind::Issue,
            EventKind::DirTransition,
            EventKind::Invalidation,
            EventKind::WindowAdmit,
            EventKind::WindowStall,
        ];
        let events: Vec<TraceEvent> = (0..n_events)
            .map(|_| TraceEvent {
                ts: SimTime::from_nanos(rng.gen_below(500)),
                lane: rng.gen_below(4) as u32,
                kind: kinds[rng.gen_below(kinds.len() as u64) as usize],
                dur: SimTime::from_nanos(rng.gen_below(50)),
                a0: rng.gen_below(8),
                a1: rng.gen_below(8),
            })
            .collect();
        let split = split_at % (n_events + 1);

        // One "fused" buffer versus two "shard" buffers with the same
        // multiset, merged in the opposite order.
        let mut fused = TraceData { events: events.clone(), dropped: 0 };
        let mut sharded = TraceData {
            events: events[split..].to_vec(),
            dropped: 0,
        };
        sharded.merge(TraceData { events: events[..split].to_vec(), dropped: 0 });
        fused.canonicalize();
        sharded.canonicalize();
        prop_assert_eq!(&fused, &sharded, "canonical order depends only on the multiset");

        for w in fused.events.windows(2) {
            prop_assert!(w[0].ts <= w[1].ts, "canonical order regressed in virtual time");
        }
        for lane in 0..4u32 {
            let mut last = SimTime::ZERO;
            for e in fused.events.iter().filter(|e| e.lane == lane) {
                prop_assert!(e.ts >= last, "lane {lane} regressed");
                last = e.ts;
            }
        }
    }
}
