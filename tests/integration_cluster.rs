//! Full-stack cluster tests: system calls, allocation policy, data
//! integrity against a reference model, migration, epoch machinery.

use std::collections::HashMap;

use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::{AccessKind, MemorySystem};
use mind_sim::stats::jains_index;
use mind_sim::{SimRng, SimTime};

fn ms(n: u64) -> SimTime {
    SimTime::from_millis(n)
}

#[test]
fn process_lifecycle_and_reuse() {
    let mut c = MindCluster::new(MindConfig::small());
    let p1 = c.exec().unwrap();
    let v1 = c.mmap(p1, 1 << 20).unwrap();
    c.write_bytes(ms(1), 0, p1, v1, b"gone soon").unwrap();
    c.exit(ms(2), p1).unwrap();

    // The address space is free again: a new process can claim it.
    let p2 = c.exec().unwrap();
    let v2 = c.mmap(p2, 1 << 20).unwrap();
    assert_eq!(v1, v2, "first-fit reuses the freed range");
    // And sees fresh memory, not p1's data (p1's pages were flushed to the
    // memory blade, but protection prevents p1-era access and the new
    // process state starts from whatever the blade holds -- here we only
    // assert access works and is isolated at the API level).
    assert!(c.read_bytes(ms(3), 0, p2, v2, 16).is_ok());
}

#[test]
fn allocation_balances_and_reports_fairness() {
    let mut cfg = MindConfig::small();
    cfg.n_memory = 4;
    cfg.blade_span = 1 << 26;
    let mut c = MindCluster::new(cfg);
    let pid = c.exec().unwrap();
    for _ in 0..32 {
        c.mmap(pid, 1 << 20).unwrap();
    }
    let loads: Vec<f64> = c.allocated_per_blade().iter().map(|&x| x as f64).collect();
    assert!(jains_index(&loads) > 0.99, "balanced: {loads:?}");
}

#[test]
fn functional_model_matches_reference_hashmap() {
    // Random byte writes/reads across blades vs a HashMap reference model.
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 18).unwrap(); // 64 pages.
    let mut reference: HashMap<u64, u8> = HashMap::new();
    let mut rng = SimRng::new(4242);
    for i in 0..3_000u64 {
        let addr = base + rng.gen_below(1 << 18);
        let blade = rng.gen_below(2) as u16;
        let t = SimTime::from_micros(i * 50);
        if rng.gen_bool(0.5) {
            let val = rng.gen_below(256) as u8;
            c.write_bytes(t, blade, pid, addr, &[val]).unwrap();
            reference.insert(addr, val);
        } else {
            let got = c.read_bytes(t, blade, pid, addr, 1).unwrap();
            let expect = reference.get(&addr).copied().unwrap_or(0);
            assert_eq!(got[0], expect, "addr {addr:#x} iteration {i}");
        }
    }
}

#[test]
fn trace_replay_is_deterministic() {
    let run_once = || {
        let mut c = MindCluster::new(MindConfig::small());
        let base = c.alloc(1 << 20);
        let mut rng = SimRng::new(7);
        let mut total = SimTime::ZERO;
        for i in 0..2_000u64 {
            let kind = if rng.gen_bool(0.3) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let out = MemorySystem::access(
                &mut c,
                SimTime::from_micros(i * 30),
                rng.gen_below(2) as u16,
                base + rng.gen_below(256) * 4096,
                kind,
            );
            total += out.latency.total();
        }
        (total, c.metrics().get("invalidation_requests"))
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn migration_installs_outliers_and_keeps_working() {
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 18).unwrap();
    c.access_as(ms(1), 0, pid, base, AccessKind::Write).unwrap();
    let rules_before = c.match_action_rules();
    let pieces = c.migrate(ms(2), base, 1 << 18, 1, 1 << 25).unwrap();
    assert!(pieces >= 1);
    assert!(c.match_action_rules() > rules_before);
    // Post-migration accesses work and hit the new blade's range.
    assert!(c.access_as(ms(3), 1, pid, base, AccessKind::Read).is_ok());
}

#[test]
fn bounded_splitting_splits_contended_regions() {
    // Two blades hammer two pages of one initial region with writes:
    // false invalidations accumulate and the region splits.
    let mut cfg = MindConfig::small();
    cfg.split.epoch_len = SimTime::from_micros(500);
    let mut c = MindCluster::new(cfg);
    let pid = c.exec().unwrap();
    let base = c.mmap(pid, 1 << 16).unwrap();
    // A second, cold region: with a single region the hot one always sits
    // exactly at the mean and the threshold t = mean never trips.
    let cold = c.mmap(pid, 1 << 16).unwrap();
    c.access_as(SimTime::ZERO, 0, pid, cold, AccessKind::Read)
        .unwrap();
    let (_, k0) = {
        c.access_as(SimTime::ZERO, 0, pid, base, AccessKind::Read)
            .unwrap();
        c.engine().directory().region_of(base).unwrap()
    };
    let mut t = SimTime::from_micros(10);
    for i in 0..400u64 {
        let blade = (i % 2) as u16;
        // Keep both pages dirty at the victim so every invalidation
        // falsely flushes the sibling page.
        c.access_as(t, blade, pid, base, AccessKind::Write).unwrap();
        t += SimTime::from_micros(15);
        c.access_as(t, blade, pid, base + 4096, AccessKind::Write)
            .unwrap();
        t += SimTime::from_micros(15);
    }
    let (_, k_after) = c.engine().directory().region_of(base).unwrap();
    assert!(
        k_after < k0,
        "hot region split below its initial size: {k_after} vs {k0}"
    );
    assert!(c.splitter().epochs_run() > 0);
    assert!(c.metrics_snapshot().get("directory_splits") > 0);
}

#[test]
fn syscall_counters_flow_to_metrics() {
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let v = c.mmap(pid, 4096).unwrap();
    c.munmap(ms(1), pid, v).unwrap();
    let m = c.metrics_snapshot();
    assert_eq!(m.get("syscalls"), 3);
    assert!(m.get("rules_installed") >= 1);
}

#[test]
fn two_processes_share_via_same_pdid_threads() {
    // Threads of the SAME process on different blades share transparently;
    // this is the elasticity story. Place threads via the controller.
    let mut c = MindCluster::new(MindConfig::small());
    let pid = c.exec().unwrap();
    let b0 = c.place_thread(pid).unwrap();
    let b1 = c.place_thread(pid).unwrap();
    assert_ne!(b0, b1, "round-robin placement");
    let base = c.mmap(pid, 1 << 16).unwrap();
    c.write_bytes(ms(1), b0, pid, base, b"thread0").unwrap();
    let got = c.read_bytes(ms(2), b1, pid, base, 7).unwrap();
    assert_eq!(&got, b"thread0");
}

#[test]
fn memory_exhaustion_is_enomem_not_panic() {
    let mut cfg = MindConfig::small();
    cfg.blade_span = 1 << 20;
    cfg.memory_blade_bytes = 1 << 20;
    cfg.n_memory = 1;
    let mut c = MindCluster::new(cfg);
    let pid = c.exec().unwrap();
    assert!(c.mmap(pid, 1 << 20).is_ok());
    assert!(c.mmap(pid, 4096).is_err());
}
