//! Cross-system comparisons: the baseline models expose exactly the
//! performance traits the paper's evaluation relies on.

use mind_baselines::{FastSwapConfig, FastSwapSystem, GamConfig, GamSystem};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_core::system::{AccessKind, MemorySystem};
use mind_sim::SimTime;
use mind_workloads::micro::{MicroConfig, MicroWorkload};
use mind_workloads::runner::{run, RunConfig};

fn micro(threads: u16, read_ratio: f64, sharing: f64) -> MicroWorkload {
    MicroWorkload::new(MicroConfig {
        n_threads: threads,
        read_ratio,
        sharing_ratio: sharing,
        shared_pages: 4_000,
        private_pages: 1_000,
        seed: 11,
    })
}

fn cfg(ops: u64, tpb: u16) -> RunConfig {
    RunConfig {
        ops_per_thread: ops,
        warmup_ops_per_thread: ops / 2,
        threads_per_blade: tpb,
        think_time: SimTime::from_nanos(100),
        interleave: false,
        batch_ops: 1,
        window: 1,
        ..Default::default()
    }
}

#[test]
fn gam_local_accesses_are_order_of_magnitude_slower() {
    // Paper 7.1: GAM's software checks make local accesses ~10x slower
    // than MIND's hardware-MMU path.
    let mut gam = GamSystem::new(GamConfig::default());
    let base = gam.alloc(1 << 20);
    gam.access(SimTime::ZERO, 0, base, AccessKind::Read);
    let gam_hit = gam
        .access(SimTime::from_micros(50), 0, base, AccessKind::Read)
        .latency
        .total();

    let mut mind = MindCluster::new(MindConfig::small());
    let mbase = mind.alloc(1 << 20);
    MemorySystem::access(&mut mind, SimTime::ZERO, 0, mbase, AccessKind::Read);
    let mind_hit = MemorySystem::access(
        &mut mind,
        SimTime::from_micros(50),
        0,
        mbase,
        AccessKind::Read,
    )
    .latency
    .total();

    let ratio = gam_hit.as_nanos() as f64 / mind_hit.as_nanos() as f64;
    assert!((8.0..15.0).contains(&ratio), "GAM/MIND local = {ratio:.1}x");
}

#[test]
fn fastswap_cannot_share_across_blades() {
    // FastSwap's swap domains are independent: a write on blade 0 is never
    // observed as coherence activity for blade 1 — there simply is none.
    let mut fs = FastSwapSystem::new(FastSwapConfig {
        n_compute: 2,
        ..Default::default()
    });
    let base = fs.alloc(1 << 20);
    let w = fs.access(SimTime::ZERO, 0, base, AccessKind::Write);
    let r = fs.access(SimTime::from_micros(50), 1, base, AccessKind::Read);
    assert_eq!(w.invalidations, 0);
    assert_eq!(r.invalidations, 0);
    assert_eq!(fs.metrics().get("invalidation_requests"), 0);
}

#[test]
fn mind_and_fastswap_agree_on_private_workloads() {
    // With zero sharing on one blade, MIND adds no coherence cost over the
    // swap path: runtimes within 20%.
    let mut wl = micro(4, 0.7, 0.0);
    let mut mind = MindCluster::new(MindConfig {
        n_compute: 1,
        cache_pages: 2_000,
        ..Default::default()
    });
    let mind_rt = run(&mut mind, &mut wl, cfg(5_000, 4)).runtime;

    let mut wl = micro(4, 0.7, 0.0);
    let mut fs = FastSwapSystem::new(FastSwapConfig {
        cache_pages: 2_000,
        ..Default::default()
    });
    let fs_rt = run(&mut fs, &mut wl, cfg(5_000, 4)).runtime;
    // FastSwap is slightly ahead: its swap PTEs are born writable, so it
    // never pays MIND's S->M upgrade faults (Figure 5 left shows the same
    // small FastSwap edge).
    let ratio = mind_rt.as_nanos() as f64 / fs_rt.as_nanos() as f64;
    assert!((0.8..1.5).contains(&ratio), "MIND/FastSwap = {ratio:.2}");
}

#[test]
fn pso_outscales_tso_on_write_heavy_sharing() {
    // The paper's §7.1 simulation claim: on write-heavy shared workloads
    // (memcached/YCSB-A), weaker consistency (MIND-PSO) retains more
    // multi-blade performance than TSO, whose page faults block on every
    // conflicting write.
    use mind_core::system::ConsistencyModel;
    use mind_workloads::memcached::{MemcachedConfig, MemcachedWorkload};
    let total_ops = 200_000u64;
    let runtime_for = |blades: u16, model: ConsistencyModel| {
        let tpb = 10;
        let threads = blades * tpb;
        let ops = total_ops / threads as u64;
        let mut wl = MemcachedWorkload::new(MemcachedConfig {
            n_threads: threads,
            ..MemcachedConfig::workload_a()
        });
        let mut mind = MindCluster::new(
            MindConfig {
                n_compute: blades,
                cache_pages: 5_000,
                dir_capacity: 1_200,
                ..Default::default()
            }
            .consistency(model),
        );
        run(&mut mind, &mut wl, cfg(ops, tpb)).runtime
    };
    let tso_scaling = runtime_for(1, ConsistencyModel::Tso).as_nanos() as f64
        / runtime_for(4, ConsistencyModel::Tso).as_nanos() as f64;
    let pso_scaling = runtime_for(1, ConsistencyModel::Pso).as_nanos() as f64
        / runtime_for(4, ConsistencyModel::Pso).as_nanos() as f64;
    assert!(
        pso_scaling > tso_scaling,
        "PSO retains more scaling: PSO {pso_scaling:.2} vs TSO {tso_scaling:.2}"
    );
}

#[test]
fn all_systems_replay_identical_traces_deterministically() {
    for system in ["mind", "gam", "fastswap"] {
        let once = || {
            let mut wl = micro(2, 0.5, 0.5);
            let c = cfg(2_000, 2);
            match system {
                "mind" => {
                    let mut s = MindCluster::new(MindConfig {
                        n_compute: 1,
                        cache_pages: 2_000,
                        ..Default::default()
                    });
                    run(&mut s, &mut wl, c).runtime
                }
                "gam" => {
                    let mut s = GamSystem::new(GamConfig {
                        cache_pages: 2_000,
                        threads_per_blade: 2,
                        ..Default::default()
                    });
                    run(&mut s, &mut wl, c).runtime
                }
                _ => {
                    let mut s = FastSwapSystem::new(FastSwapConfig {
                        cache_pages: 2_000,
                        ..Default::default()
                    });
                    run(&mut s, &mut wl, c).runtime
                }
            }
        };
        assert_eq!(once(), once(), "{system} deterministic");
    }
}

#[test]
fn remote_latencies_are_comparable_across_systems() {
    // Paper 7.1: "remote access latencies are similar for both [GAM and
    // MIND]" — and FastSwap's swap-in is the same RDMA path.
    let probe_mind = {
        let mut s = MindCluster::new(MindConfig {
            n_compute: 1,
            ..Default::default()
        });
        let b = s.alloc(1 << 20);
        MemorySystem::access(&mut s, SimTime::ZERO, 0, b, AccessKind::Read)
            .latency
            .total()
    };
    let probe_gam = {
        let mut s = GamSystem::new(GamConfig::default());
        let b = s.alloc(1 << 20);
        s.access(SimTime::ZERO, 0, b, AccessKind::Read)
            .latency
            .total()
    };
    let probe_fs = {
        let mut s = FastSwapSystem::new(FastSwapConfig::default());
        let b = s.alloc(1 << 20);
        s.access(SimTime::ZERO, 0, b, AccessKind::Read)
            .latency
            .total()
    };
    let us = |t: SimTime| t.as_micros_f64();
    assert!((8.0..12.0).contains(&us(probe_mind)), "MIND {probe_mind}");
    assert!((8.0..14.0).contains(&us(probe_gam)), "GAM {probe_gam}");
    assert!((8.0..12.0).contains(&us(probe_fs)), "FastSwap {probe_fs}");
}
