//! Property-based tenant-isolation tests over the `mind_service`
//! subsystem: under any interleaving of tenant arrivals, departures, and
//! accesses, a tenant can only ever reach memory inside its own
//! protection domain, and a departed tenant leaves no residue in the
//! switch (TCAM entries, allocated memory).

use proptest::prelude::*;

use mind::core::system::AccessKind;
use mind::service::{MemoryService, QosClass, ServiceConfig};
use mind::sim::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random churn script: op 0 admits, op 1 departs, op 2 probes a
    /// tenant's own region (must be granted), op 3 probes *another*
    /// tenant's region (must be denied). After the script, every
    /// remaining tenant departs and the rack must be clean.
    #[test]
    fn no_sequence_of_churn_breaks_isolation(
        ops in prop::collection::vec((0u8..4, 0u64..(1 << 32)), 1..80)
    ) {
        let mut svc = MemoryService::new(ServiceConfig::default());
        let mut now = SimTime::ZERO;
        for (op, r) in ops {
            now += SimTime::from_micros(50);
            match op {
                0 => {
                    let qos = QosClass::ALL[(r % 3) as usize];
                    let pages = 16 + r % 256;
                    // Admission may refuse under pressure; that is fine —
                    // refusal is the isolation-preserving outcome.
                    let _ = svc.admit(now, qos, pages, 1_000.0);
                }
                1 => {
                    let live = svc.live_tenants();
                    if let Some(&id) = live.get(r as usize % live.len().max(1)) {
                        let pid = svc.tenant(id).unwrap().pid;
                        svc.depart(now, id);
                        prop_assert_eq!(
                            svc.cluster().protection_entries_for(pid),
                            0,
                            "departed tenant {} left TCAM entries", id
                        );
                    }
                }
                2 => {
                    let live = svc.live_tenants();
                    if let Some(&id) = live.get(r as usize % live.len().max(1)) {
                        let (pid, base, pages) = {
                            let t = svc.tenant(id).unwrap();
                            (t.pid, t.region_base, t.pages)
                        };
                        let addr = base + (r % pages) * 4096;
                        prop_assert!(
                            svc.cluster_mut()
                                .access_as(now, 0, pid, addr, AccessKind::Write)
                                .is_ok(),
                            "tenant {} denied inside its own domain", id
                        );
                    }
                }
                _ => {
                    let live = svc.live_tenants();
                    if live.len() >= 2 {
                        let a = live[r as usize % live.len()];
                        let b = live[(r as usize + 1) % live.len()];
                        let pid_a = svc.tenant(a).unwrap().pid;
                        let (base_b, pages_b) = {
                            let t = svc.tenant(b).unwrap();
                            (t.region_base, t.pages)
                        };
                        let addr = base_b + (r % pages_b) * 4096;
                        let probe =
                            svc.cluster_mut().access_as(now, 0, pid_a, addr, AccessKind::Read);
                        prop_assert!(
                            probe.is_err(),
                            "tenant {} reached tenant {}'s domain at {:#x}", a, b, addr
                        );
                    }
                }
            }
        }
        // Drain: departing everyone must reclaim every TCAM entry and
        // every byte of disaggregated memory.
        now += SimTime::from_micros(50);
        for id in svc.live_tenants() {
            let pid = svc.tenant(id).unwrap().pid;
            svc.depart(now, id);
            prop_assert_eq!(svc.cluster().protection_entries_for(pid), 0);
        }
        prop_assert_eq!(svc.cluster().memory_utilization(), 0.0);
        prop_assert_eq!(svc.cluster().directory_entries(), 0, "directory clean");
    }

    /// The event-driven loop preserves the same invariant end-to-end: a
    /// full churn run leaves no TCAM entries for any departed tenant and
    /// every live tenant still isolated.
    #[test]
    fn full_service_runs_keep_domains_disjoint(seed in 0u64..12) {
        let cfg = ServiceConfig {
            seed,
            duration: SimTime::from_millis(25),
            arrival_rate_hz: 600.0,
            mean_lifetime: SimTime::from_millis(10),
            ..Default::default()
        };
        let mut svc = MemoryService::new(cfg);
        // Drive the churn through the scripted API mirroring run(): the
        // public run() consumes the service, so re-run a small script of
        // admissions here and rely on the unit tests for run() itself.
        let mut now = SimTime::ZERO;
        let mut admitted = Vec::new();
        for i in 0..20u64 {
            now += SimTime::from_micros(200);
            if let Ok(id) = svc.admit(now, QosClass::ALL[(i % 3) as usize], 32 + i, 2_000.0) {
                admitted.push(id);
            }
            // Interleave departures every third step.
            if i % 3 == 2 && !admitted.is_empty() {
                let id = admitted.remove((seed as usize + i as usize) % admitted.len());
                let pid = svc.tenant(id).unwrap().pid;
                svc.depart(now, id);
                prop_assert_eq!(svc.cluster().protection_entries_for(pid), 0);
            }
        }
        // Every live pair mutually denied.
        let live = svc.live_tenants();
        for &a in &live {
            for &b in &live {
                if a == b {
                    continue;
                }
                let pid_a = svc.tenant(a).unwrap().pid;
                let base_b = svc.tenant(b).unwrap().region_base;
                now += SimTime::from_micros(10);
                prop_assert!(
                    svc.cluster_mut()
                        .access_as(now, 0, pid_a, base_b, AccessKind::Read)
                        .is_err()
                );
            }
        }
    }
}
