//! Determinism regression tests.
//!
//! The whole reproduction rests on the deterministic-simulation contract of
//! `mind_sim`: a run is a pure function of its configuration and RNG seeds
//! (`mind_sim::rng::SimRng` is the only entropy source, and every queue is
//! stable-ordered). These tests lock that contract in by replaying the same
//! seeded workload twice against freshly built systems and requiring the
//! *entire* observable output — runtime, operation counts, latency-component
//! sums, and the full metrics snapshot — to be identical, for MIND and for
//! both baselines. A regression here (e.g. iterating a `HashMap`, reading
//! wall-clock time, or sharing an RNG across threads nondeterministically)
//! would silently invalidate every figure the bench harness regenerates.

use mind_baselines::{FastSwapConfig, FastSwapSystem, GamConfig, GamSystem};
use mind_core::cluster::{MindCluster, MindConfig};
use mind_sim::SimTime;
use mind_workloads::kvs::{KvsConfig, KvsWorkload};
use mind_workloads::micro::{MicroConfig, MicroWorkload};
use mind_workloads::runner::{run, RunConfig, RunReport};
use mind_workloads::trace::Workload;

fn micro(seed: u64) -> MicroWorkload {
    MicroWorkload::new(MicroConfig {
        n_threads: 4,
        read_ratio: 0.7,
        sharing_ratio: 0.4,
        shared_pages: 2_000,
        private_pages: 500,
        seed,
    })
}

fn run_cfg() -> RunConfig {
    RunConfig {
        ops_per_thread: 2_000,
        warmup_ops_per_thread: 500,
        threads_per_blade: 2,
        think_time: SimTime::from_nanos(100),
        interleave: false,
        batch_ops: 1,
        window: 1,
        ..Default::default()
    }
}

/// Asserts that two reports are equal in every deterministic field,
/// including the full lifetime and windowed metrics snapshots.
fn assert_reports_identical(a: &RunReport, b: &RunReport) {
    assert_eq!(a.runtime, b.runtime, "runtime");
    assert_eq!(a.total_ops, b.total_ops, "total_ops");
    assert_eq!(a.sum_fault_ns, b.sum_fault_ns, "sum_fault_ns");
    assert_eq!(a.sum_network_ns, b.sum_network_ns, "sum_network_ns");
    assert_eq!(a.sum_inv_queue_ns, b.sum_inv_queue_ns, "sum_inv_queue_ns");
    assert_eq!(a.sum_inv_tlb_ns, b.sum_inv_tlb_ns, "sum_inv_tlb_ns");
    assert_eq!(a.sum_software_ns, b.sum_software_ns, "sum_software_ns");
    assert_eq!(a.remote_per_op.to_bits(), b.remote_per_op.to_bits(), "remote_per_op");
    assert_eq!(
        a.invalidations_per_op.to_bits(),
        b.invalidations_per_op.to_bits(),
        "invalidations_per_op"
    );
    assert_eq!(a.flushed_per_op.to_bits(), b.flushed_per_op.to_bits(), "flushed_per_op");
    assert_eq!(a.mean_remote_ns.to_bits(), b.mean_remote_ns.to_bits(), "mean_remote_ns");
    assert_eq!(a.metrics, b.metrics, "lifetime metrics snapshot");
    assert_eq!(a.window_metrics, b.window_metrics, "windowed metrics snapshot");
}

fn mind_report<W: Workload>(mut workload: W) -> RunReport {
    let mut sys = MindCluster::new(MindConfig::small());
    run(&mut sys, &mut workload, run_cfg())
}

#[test]
fn mind_replay_is_bit_identical() {
    let a = mind_report(micro(42));
    let b = mind_report(micro(42));
    assert_reports_identical(&a, &b);
}

/// A YCSB-A mix shrunk to fit the `MindConfig::small()` rack (2 memory
/// blades × 64 MB).
fn small_kvs() -> KvsWorkload {
    KvsWorkload::new(KvsConfig {
        n_partitions: 4,
        partition_pages: 1_024,
        ..KvsConfig::ycsb_a(4)
    })
}

#[test]
fn mind_kvs_replay_is_bit_identical() {
    let a = mind_report(small_kvs());
    let b = mind_report(small_kvs());
    assert_reports_identical(&a, &b);
}

#[test]
fn baseline_replays_are_bit_identical() {
    let gam = || {
        GamSystem::new(GamConfig {
            n_compute: 2,
            threads_per_blade: 2,
            ..GamConfig::default()
        })
    };
    let a = {
        let mut sys = gam();
        run(&mut sys, &mut micro(7), run_cfg())
    };
    let b = {
        let mut sys = gam();
        run(&mut sys, &mut micro(7), run_cfg())
    };
    assert_reports_identical(&a, &b);

    // FastSwap cannot share across blades, so give it one blade hosting all
    // four threads.
    let fastswap_cfg = RunConfig {
        threads_per_blade: 4,
        ..run_cfg()
    };
    let a = {
        let mut sys = FastSwapSystem::new(FastSwapConfig::default());
        run(&mut sys, &mut micro(7), fastswap_cfg)
    };
    let b = {
        let mut sys = FastSwapSystem::new(FastSwapConfig::default());
        run(&mut sys, &mut micro(7), fastswap_cfg)
    };
    assert_reports_identical(&a, &b);
}

/// Sanity check that the equality assertions above have teeth: a different
/// seed must actually steer the simulation somewhere else.
#[test]
fn different_seed_changes_the_run() {
    let a = mind_report(micro(42));
    let b = mind_report(micro(43));
    assert_ne!(
        (a.runtime, a.metrics),
        (b.runtime, b.metrics),
        "two seeds produced byte-identical runs — the workload ignores its seed"
    );
}

/// The raw RNG itself is stable across constructions and clones — the
/// lowest-level half of the determinism contract.
#[test]
fn sim_rng_streams_are_reproducible() {
    let mut a = mind_sim::SimRng::new(0xDEAD_BEEF);
    let mut b = mind_sim::SimRng::new(0xDEAD_BEEF);
    let xs: Vec<u64> = (0..1_000).map(|_| a.gen_below(1 << 30)).collect();
    let ys: Vec<u64> = (0..1_000).map(|_| b.gen_below(1 << 30)).collect();
    assert_eq!(xs, ys);

    let mut c = a.clone();
    assert_eq!(a.gen_below(u64::MAX), c.gen_below(u64::MAX));
}
